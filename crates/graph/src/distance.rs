//! Exact distances, eccentricities and diameters.
//!
//! Greedy routing is defined against the *exact* metric of the underlying
//! graph, so the reproduction needs cheap access to `dist_G(·, t)` (one BFS
//! per target, cached by the routing engine) and, for analysis and small-n
//! exact computations, full all-pairs matrices.
//!
//! All-pairs work here is batched: sources are packed 64 at a time into
//! bit-parallel [`MsBfs`](crate::msbfs::MsBfs) passes and the batches run
//! on `nav-par` workers, so [`DistanceMatrix::new`], [`eccentricities`] and
//! [`diameter_exact`] scale with cores instead of running `n` sequential
//! scalar sweeps.

use crate::msbfs::{with_msbfs, LaneWidth, MsBfsW, MsBfsWorkspace, LANES};
use crate::{bfs::Bfs, csr::Graph, NodeId, INFINITY};

/// The value encoding [`INFINITY`] inside narrow (`u16`) distance storage.
pub const NARROW_INFINITY: u16 = u16::MAX;

/// Owned distance values at adaptive width: `u16` when every finite
/// distance fits (eccentricity `< 65535`), `u32` otherwise. Narrow storage
/// halves the memory footprint — and the memory traffic of every
/// subsequent scan — of resident rows, which is what bounds how many
/// target rows a serving cache can keep warm at large `n`.
///
/// [`INFINITY`] is encoded as [`NARROW_INFINITY`] in narrow storage;
/// [`DistRowBuf::get`] always decodes back to `u32` semantics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DistRowBuf {
    /// 16-bit storage (`NARROW_INFINITY` ⇔ unreachable).
    Narrow(Vec<u16>),
    /// Full-width storage (`INFINITY` as-is).
    Wide(Vec<u32>),
}

impl DistRowBuf {
    /// Compacts a full-width buffer: narrow iff every finite value is
    /// `< NARROW_INFINITY` (so the sentinel never collides with a real
    /// distance), wide otherwise. One fused read pass — the fits check
    /// rides the conversion and aborts to the wide copy at the first
    /// oversized value, which matters when the buffer is a whole
    /// all-pairs matrix rather than one row.
    pub fn from_wide(values: &[u32]) -> Self {
        let narrow: Option<Vec<u16>> = values
            .iter()
            .map(|&d| {
                if d == INFINITY {
                    Some(NARROW_INFINITY)
                } else if d < NARROW_INFINITY as u32 {
                    Some(d as u16)
                } else {
                    None
                }
            })
            .collect();
        match narrow {
            Some(v) => DistRowBuf::Narrow(v),
            None => DistRowBuf::Wide(values.to_vec()),
        }
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        match self {
            DistRowBuf::Narrow(v) => v.len(),
            DistRowBuf::Wide(v) => v.len(),
        }
    }

    /// `true` when no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` for 16-bit storage.
    pub fn is_narrow(&self) -> bool {
        matches!(self, DistRowBuf::Narrow(_))
    }

    /// Payload size in bytes (what a byte-bounded cache should charge).
    pub fn bytes(&self) -> usize {
        match self {
            DistRowBuf::Narrow(v) => v.len() * std::mem::size_of::<u16>(),
            DistRowBuf::Wide(v) => v.len() * std::mem::size_of::<u32>(),
        }
    }

    /// The value at `i`, decoded to `u32` semantics ([`INFINITY`] for
    /// unreachable).
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        self.view().get(i)
    }

    /// A borrowed view of the whole buffer.
    #[inline]
    pub fn view(&self) -> DistRowView<'_> {
        match self {
            DistRowBuf::Narrow(v) => DistRowView::Narrow(v),
            DistRowBuf::Wide(v) => DistRowView::Wide(v),
        }
    }

    /// A borrowed view of the half-open index range `lo..hi` (used by
    /// matrix storage to slice out one row).
    #[inline]
    pub fn slice(&self, lo: usize, hi: usize) -> DistRowView<'_> {
        match self {
            DistRowBuf::Narrow(v) => DistRowView::Narrow(&v[lo..hi]),
            DistRowBuf::Wide(v) => DistRowView::Wide(&v[lo..hi]),
        }
    }
}

/// A borrowed distance row at either width; the reading side of
/// [`DistRowBuf`]. Copyable, so routers and caches can hand it around
/// freely without touching the owning storage.
#[derive(Clone, Copy, Debug)]
pub enum DistRowView<'a> {
    /// Borrowed 16-bit values ([`NARROW_INFINITY`] ⇔ unreachable).
    Narrow(&'a [u16]),
    /// Borrowed full-width values.
    Wide(&'a [u32]),
}

impl<'a> DistRowView<'a> {
    /// Number of values in view.
    pub fn len(&self) -> usize {
        match self {
            DistRowView::Narrow(v) => v.len(),
            DistRowView::Wide(v) => v.len(),
        }
    }

    /// `true` when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `i`, decoded to `u32` semantics.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        match self {
            DistRowView::Narrow(v) => {
                let d = v[i];
                if d == NARROW_INFINITY {
                    INFINITY
                } else {
                    d as u32
                }
            }
            DistRowView::Wide(v) => v[i],
        }
    }

    /// Iterates the decoded values in index order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + 'a {
        let (narrow, wide) = match *self {
            DistRowView::Narrow(v) => (Some(v), None),
            DistRowView::Wide(v) => (None, Some(v)),
        };
        narrow
            .into_iter()
            .flatten()
            .map(|&d| {
                if d == NARROW_INFINITY {
                    INFINITY
                } else {
                    d as u32
                }
            })
            .chain(wide.into_iter().flatten().copied())
    }

    /// `true` iff the decoded values equal `other` element for element.
    pub fn eq_wide(&self, other: &[u32]) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, &b)| a == b)
    }
}

/// The source batches of an all-pairs sweep: `0..n` packed into runs of
/// [`LANES`] consecutive ids.
fn source_batches(n: usize) -> impl Iterator<Item = Vec<NodeId>> {
    (0..n.div_ceil(LANES)).map(move |c| {
        let lo = c * LANES;
        let hi = (lo + LANES).min(n);
        (lo as NodeId..hi as NodeId).collect()
    })
}

/// Dense all-pairs distance matrix (`O(n·m)` time via batched bit-parallel
/// BFS) — intended for analysis and exact evaluation at small `n`.
///
/// Storage is adaptive ([`DistRowBuf`]): `n × n × 2` bytes when every
/// eccentricity fits in 16 bits (i.e. essentially always — only graphs of
/// diameter ≥ 65535 fall back to `u32`), halving the memory footprint and
/// the traffic of whole-matrix scans.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DistanceMatrix {
    n: usize,
    /// Row-major `n × n` at adaptive width.
    data: DistRowBuf,
}

impl DistanceMatrix {
    /// Computes all-pairs shortest-path distances with the default worker
    /// count (batched 64-wide MS-BFS, batches in parallel).
    pub fn new(g: &Graph) -> Self {
        Self::with_threads(g, nav_par::default_threads())
    }

    /// [`DistanceMatrix::new`] with an explicit worker count (`1` =
    /// inline). Distances are exact, so the result is identical for every
    /// thread count.
    pub fn with_threads(g: &Graph, threads: usize) -> Self {
        Self::with_threads_width(g, threads, LaneWidth::W64)
    }

    /// [`DistanceMatrix::with_threads`] at an explicit MS-BFS word-block
    /// width: `width.lanes()` sources per pass. Distances are exact, so
    /// the matrix is **bit-identical at every width and thread count** —
    /// the knob only changes how many sources amortise one traversal (see
    /// `BENCH_core.json`'s `all_pairs_width_sweep`).
    pub fn with_threads_width(g: &Graph, threads: usize, width: LaneWidth) -> Self {
        match width {
            LaneWidth::W64 => Self::fill::<1>(g, threads),
            LaneWidth::W128 => Self::fill::<2>(g, threads),
            LaneWidth::W256 => Self::fill::<4>(g, threads),
        }
    }

    fn fill<const W: usize>(g: &Graph, threads: usize) -> Self
    where
        MsBfsW<W>: MsBfsWorkspace,
    {
        use std::sync::atomic::{AtomicBool, Ordering};
        let n = g.num_nodes();
        let lanes = MsBfsW::<W>::LANES;
        let sources: Vec<NodeId> = (0..n as NodeId).collect();
        let batches: Vec<&[NodeId]> = sources.chunks(lanes).collect();
        // Optimistically narrow: workers write their stripe's 16-bit
        // cells straight out of the MS-BFS pass (`distances_into_narrow`
        // emits `NARROW_INFINITY` natively) — the full-width `n × n`
        // matrix is never materialised and no widen-then-narrow pass runs,
        // halving both the resident footprint and the extraction traffic.
        // Only a graph with an eccentricity ≥ 65535 takes the wide
        // fallback (a full recompute, but such a graph pays Θ(n·diam)
        // traversals anyway).
        let mut narrow = vec![0u16; n * n];
        let overflow = AtomicBool::new(false);
        if threads <= 1 {
            // Inline fill: the graph is undirected, so each batch's
            // distances are also the matrix's *columns* for those sources
            // (`M[v][s] = M[s][v]`) — stream them out node-major straight
            // from the pass's depth planes and skip the lane-major
            // transpose. Parallel fills can't use this (workers own
            // disjoint row stripes, columns interleave), and don't need
            // to: the transpose rides a worker while others traverse.
            let ok = MsBfsW::<W>::with_ws(n, |ms| {
                batches.iter().enumerate().all(|(b, batch)| {
                    ms.distances_into_columns(g, batch, b * lanes, n, &mut narrow)
                })
            });
            if !ok {
                overflow.store(true, Ordering::Relaxed);
            }
        } else {
            nav_par::parallel_chunks_mut(&mut narrow, lanes * n.max(1), threads, |b, stripe| {
                if overflow.load(Ordering::Relaxed) {
                    return;
                }
                let ok =
                    MsBfsW::<W>::with_ws(n, |ms| ms.distances_into_narrow(g, batches[b], stripe));
                if !ok {
                    overflow.store(true, Ordering::Relaxed);
                }
            });
        }
        let data = if overflow.into_inner() {
            let mut wide = vec![0u32; n * n];
            crate::msbfs::batched_rows_impl_for::<W>(g, &sources, threads, &mut wide);
            DistRowBuf::Wide(wide)
        } else {
            DistRowBuf::Narrow(narrow)
        };
        DistanceMatrix { n, data }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// `true` when the matrix is stored at 16-bit width.
    pub fn is_compact(&self) -> bool {
        self.data.is_narrow()
    }

    /// Resident payload size in bytes.
    pub fn bytes(&self) -> usize {
        self.data.bytes()
    }

    /// `dist(u, v)`; [`INFINITY`] when disconnected.
    #[inline]
    pub fn dist(&self, u: NodeId, v: NodeId) -> u32 {
        self.data.get(u as usize * self.n + v as usize)
    }

    /// Row of distances from `u` (a width-agnostic borrowed view).
    #[inline]
    pub fn row(&self, u: NodeId) -> DistRowView<'_> {
        self.data
            .slice(u as usize * self.n, (u as usize + 1) * self.n)
    }

    /// Eccentricity of `u` (max finite distance). `None` if some node is
    /// unreachable from `u`.
    pub fn eccentricity(&self, u: NodeId) -> Option<u32> {
        let mut max = 0u32;
        for d in self.row(u).iter() {
            if d == INFINITY {
                return None;
            }
            max = max.max(d);
        }
        Some(max)
    }

    /// Exact diameter; `None` when the graph is disconnected.
    pub fn diameter(&self) -> Option<u32> {
        let mut best = 0u32;
        for u in 0..self.n {
            best = best.max(self.eccentricity(u as NodeId)?);
        }
        Some(best)
    }

    /// A pair `(s, t)` realising the diameter (smallest ids on ties).
    pub fn diametral_pair(&self) -> Option<(NodeId, NodeId)> {
        let d = self.diameter()?;
        for u in 0..self.n {
            for v in 0..self.n {
                if self.dist(u as NodeId, v as NodeId) == d {
                    return Some((u as NodeId, v as NodeId));
                }
            }
        }
        None
    }
}

/// Eccentricity of every node without storing the matrix: batched MS-BFS
/// in `O(n·m / 64)`-ish word operations and `O(n)` space per batch.
/// `ecc[u]` is `None` when `u` does not reach the whole graph.
pub fn eccentricities(g: &Graph) -> Vec<Option<u32>> {
    eccentricities_with_threads(g, nav_par::default_threads())
}

/// [`eccentricities`] with an explicit worker count (`1` = inline).
pub fn eccentricities_with_threads(g: &Graph, threads: usize) -> Vec<Option<u32>> {
    let n = g.num_nodes();
    let batches: Vec<Vec<NodeId>> = source_batches(n).collect();
    let per_batch = nav_par::parallel_map(batches.len(), threads, |c| {
        with_msbfs(n, |ms| ms.eccentricities(g, &batches[c]))
    });
    per_batch
        .into_iter()
        .flatten()
        .map(|(ecc, reached)| (reached == n).then_some(ecc))
        .collect()
}

/// Exact diameter via all eccentricities but without storing the matrix.
/// Returns `None` for disconnected graphs — detected by one cheap scalar
/// BFS up front, so the full batched sweep only runs when it can succeed.
pub fn diameter_exact(g: &Graph) -> Option<u32> {
    if g.num_nodes() > 0 && !crate::components::is_connected(g) {
        return None;
    }
    let mut best = 0u32;
    for ecc in eccentricities(g) {
        best = best.max(ecc?);
    }
    Some(best)
}

/// Exact radius (minimum eccentricity). `None` for disconnected graphs
/// and for the empty graph (connectivity pre-checked as in
/// [`diameter_exact`]).
pub fn radius_exact(g: &Graph) -> Option<u32> {
    if g.num_nodes() > 0 && !crate::components::is_connected(g) {
        return None;
    }
    let mut best: Option<u32> = None;
    for ecc in eccentricities(g) {
        let e = ecc?;
        best = Some(best.map_or(e, |b| b.min(e)));
    }
    best
}

/// Double-sweep lower bound on the diameter: BFS from `start`, then BFS from
/// the farthest node found. Exact on trees; a good estimate elsewhere.
/// Returns `(s, t, dist(s, t))` for the best pair found.
pub fn double_sweep(g: &Graph, start: NodeId) -> (NodeId, NodeId, u32) {
    let mut bfs = Bfs::new(g.num_nodes());
    let (a, _) = bfs.farthest(g, start);
    let (b, d) = bfs.farthest(g, a);
    (a, b, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path(n: usize) -> Graph {
        GraphBuilder::from_edges(n, (0..n as NodeId - 1).map(|u| (u, u + 1))).unwrap()
    }

    fn cycle(n: usize) -> Graph {
        GraphBuilder::from_edges(n, (0..n as NodeId).map(|u| (u, (u + 1) % n as NodeId))).unwrap()
    }

    #[test]
    fn matrix_path_distances() {
        let g = path(5);
        let m = DistanceMatrix::new(&g);
        assert_eq!(m.dist(0, 4), 4);
        assert_eq!(m.dist(4, 0), 4);
        assert_eq!(m.dist(2, 2), 0);
        assert!(m.row(0).eq_wide(&[0, 1, 2, 3, 4]));
        assert_eq!(m.row(0).iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn matrix_is_compact_and_halves_bytes() {
        let g = path(10);
        let m = DistanceMatrix::new(&g);
        assert!(m.is_compact());
        assert_eq!(m.bytes(), 10 * 10 * 2);
    }

    #[test]
    fn row_buf_narrow_roundtrip_with_infinity() {
        let wide = [0u32, 3, NARROW_INFINITY as u32 - 1, INFINITY];
        let buf = DistRowBuf::from_wide(&wide);
        assert!(buf.is_narrow());
        assert!(!buf.is_empty());
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.bytes(), 8);
        for (i, &d) in wide.iter().enumerate() {
            assert_eq!(buf.get(i), d);
            assert_eq!(buf.view().get(i), d);
        }
        assert!(buf.view().eq_wide(&wide));
        assert!(!buf.view().eq_wide(&wide[..3]));
        assert!(!buf.view().is_empty());
    }

    #[test]
    fn row_buf_wide_fallback_when_distance_too_large() {
        // A finite value equal to the narrow sentinel must force u32.
        let wide = [0u32, NARROW_INFINITY as u32, INFINITY];
        let buf = DistRowBuf::from_wide(&wide);
        assert!(!buf.is_narrow());
        assert_eq!(buf.bytes(), 12);
        assert!(buf.view().eq_wide(&wide));
        assert_eq!(buf.slice(1, 3).iter().collect::<Vec<_>>(), wide[1..]);
    }

    #[test]
    fn matrix_symmetry() {
        let g = cycle(9);
        let m = DistanceMatrix::new(&g);
        for u in 0..9u32 {
            for v in 0..9u32 {
                assert_eq!(m.dist(u, v), m.dist(v, u));
            }
        }
    }

    #[test]
    fn eccentricity_and_diameter() {
        let g = path(7);
        let m = DistanceMatrix::new(&g);
        assert_eq!(m.eccentricity(0), Some(6));
        assert_eq!(m.eccentricity(3), Some(3));
        assert_eq!(m.diameter(), Some(6));
        assert_eq!(m.diametral_pair(), Some((0, 6)));
        assert_eq!(diameter_exact(&g), Some(6));
    }

    #[test]
    fn cycle_diameter() {
        let g = cycle(10);
        assert_eq!(diameter_exact(&g), Some(5));
        let g = cycle(11);
        assert_eq!(diameter_exact(&g), Some(5));
    }

    #[test]
    fn disconnected_reports_none() {
        let g = GraphBuilder::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let m = DistanceMatrix::new(&g);
        assert_eq!(m.dist(0, 2), INFINITY);
        assert_eq!(m.eccentricity(0), None);
        assert_eq!(m.diameter(), None);
        assert_eq!(diameter_exact(&g), None);
    }

    #[test]
    fn double_sweep_exact_on_path() {
        let g = path(20);
        let (a, b, d) = double_sweep(&g, 7);
        assert_eq!(d, 19);
        assert!((a == 0 && b == 19) || (a == 19 && b == 0));
    }

    #[test]
    fn double_sweep_lower_bounds_cycle() {
        let g = cycle(12);
        let (_, _, d) = double_sweep(&g, 0);
        assert!(d <= 6);
        assert!(d >= 5); // double sweep on a cycle still finds ~diameter
    }

    #[test]
    fn eccentricities_and_radius() {
        let g = path(7);
        let eccs = eccentricities(&g);
        assert_eq!(eccs[0], Some(6));
        assert_eq!(eccs[3], Some(3));
        assert_eq!(radius_exact(&g), Some(3));
        assert_eq!(radius_exact(&cycle(10)), Some(5));
        let disc = GraphBuilder::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(eccentricities(&disc).iter().all(|e| e.is_none()));
        assert_eq!(radius_exact(&disc), None);
    }

    #[test]
    fn matrix_identical_across_thread_counts() {
        // Exact distances: every thread count must produce the same bytes.
        let n = 150usize; // spans three 64-lane batches
        let mut b = GraphBuilder::new(n);
        for u in 0..n as NodeId {
            b.add_edge(u, (u + 1) % n as NodeId);
            b.add_edge(u, (u + 11) % n as NodeId);
        }
        let g = b.build().unwrap();
        let m1 = DistanceMatrix::with_threads(&g, 1);
        let m4 = DistanceMatrix::with_threads(&g, 4);
        assert_eq!(m1, m4);
        assert_eq!(
            eccentricities_with_threads(&g, 1),
            eccentricities_with_threads(&g, 4)
        );
    }

    #[test]
    fn matrix_identical_across_lane_widths() {
        // The width is a pure throughput knob: every (width, threads)
        // combination must produce the same bytes.
        let n = 200usize; // a partial batch at every width
        let mut b = GraphBuilder::new(n);
        for u in 0..n as NodeId {
            b.add_edge(u, (u + 1) % n as NodeId);
            b.add_edge(u, (u + 23) % n as NodeId);
        }
        let g = b.build().unwrap();
        let base = DistanceMatrix::with_threads(&g, 2);
        for width in LaneWidth::ALL {
            for threads in [1, 3] {
                let m = DistanceMatrix::with_threads_width(&g, threads, width);
                assert_eq!(m, base, "width {width} threads {threads}");
            }
        }
    }

    #[test]
    fn matrix_matches_diameter_exact_on_random_small() {
        // deterministic "random-ish" graph: circulant with chords
        let n = 24usize;
        let mut b = GraphBuilder::new(n);
        for u in 0..n as NodeId {
            b.add_edge(u, (u + 1) % n as NodeId);
            b.add_edge(u, (u + 5) % n as NodeId);
        }
        let g = b.build().unwrap();
        let m = DistanceMatrix::new(&g);
        assert_eq!(m.diameter(), diameter_exact(&g));
    }
}
