//! Thread-local BFS workspaces.
//!
//! The a-posteriori schemes (Theorem 4's ball scheme, the harmonic
//! baseline) need a BFS from the *current* node at every long-range
//! sampling. Allocating a fresh `O(n)` workspace per sample would dominate
//! the runtime, and sharing one behind a lock would serialise the trial
//! threads — so each thread keeps one growable workspace.

use nav_graph::bfs::Bfs;
use std::cell::RefCell;

thread_local! {
    static BFS_WS: RefCell<Bfs> = RefCell::new(Bfs::new(0));
}

/// Runs `f` with this thread's BFS workspace, grown to capacity `n`.
///
/// # Panics
/// Panics if called re-entrantly from within `f` (the workspace is
/// exclusive per thread; routing and sampling never nest BFS calls).
pub fn with_bfs<R>(n: usize, f: impl FnOnce(&mut Bfs) -> R) -> R {
    BFS_WS.with(|cell| {
        let mut ws = cell.borrow_mut();
        ws.ensure_capacity(n);
        f(&mut ws)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nav_graph::GraphBuilder;

    #[test]
    fn workspace_reuse_and_growth() {
        let g = GraphBuilder::from_edges(5, (0..4u32).map(|u| (u, u + 1))).unwrap();
        let d1 = with_bfs(5, |bfs| bfs.distances(&g, 0));
        assert_eq!(d1[4], 4);
        // Larger graph afterwards: workspace must grow transparently.
        let g2 = GraphBuilder::from_edges(50, (0..49u32).map(|u| (u, u + 1))).unwrap();
        let d2 = with_bfs(50, |bfs| bfs.distances(&g2, 0));
        assert_eq!(d2[49], 49);
        // And stale state from g2 must not leak back into g queries.
        let d3 = with_bfs(5, |bfs| bfs.distances(&g, 4));
        assert_eq!(d3[0], 4);
    }

    #[test]
    fn distinct_threads_get_distinct_workspaces() {
        let g = GraphBuilder::from_edges(10, (0..9u32).map(|u| (u, u + 1))).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let g = g.clone();
                std::thread::spawn(move || with_bfs(10, |bfs| bfs.distances(&g, 0))[9])
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 9);
        }
    }
}
