//! Random interval graphs, **with their interval representation**.
//!
//! Interval graphs are AT-free and have pathlength ≤ 1 (the clique path is
//! a path-decomposition whose bags are cliques), hence pathshape ≤ 1 —
//! they are the workload for Corollary 1's `O(log² n)` clause (experiment
//! E4). Keeping the representation lets `nav-decomp` build that clique
//! path directly instead of solving NP-hard recognition problems.

use nav_graph::{Graph, GraphBuilder, GraphError, NodeId};
use rand::Rng;

/// Interval representation: `intervals[v] = (l, r)` with `l ≤ r`; nodes
/// `u, v` are adjacent iff their closed intervals intersect.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IntervalRep {
    /// Closed intervals, indexed by node id.
    pub intervals: Vec<(u64, u64)>,
}

impl IntervalRep {
    /// Whether intervals of `u` and `v` intersect.
    pub fn overlaps(&self, u: NodeId, v: NodeId) -> bool {
        let (lu, ru) = self.intervals[u as usize];
        let (lv, rv) = self.intervals[v as usize];
        lu <= rv && lv <= ru
    }

    /// Builds the interval graph (edges = pairwise overlaps) with a sweep
    /// over sorted left endpoints: `O(n log n + m)`.
    pub fn to_graph(&self) -> Result<Graph, GraphError> {
        let n = self.intervals.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by_key(|&i| self.intervals[i]);
        let mut b = GraphBuilder::new(n);
        // Active list of (r, node) — prune lazily as new intervals arrive.
        let mut active: Vec<(u64, usize)> = Vec::new();
        for &i in &order {
            let (l, _r) = self.intervals[i];
            active.retain(|&(r_a, _)| r_a >= l);
            for &(_, j) in &active {
                b.add_edge(i as NodeId, j as NodeId);
            }
            active.push((self.intervals[i].1, i));
        }
        b.build()
    }
}

/// Random connected interval graph on `n` nodes.
///
/// Left endpoints are uniform in `[0, n·4)`, lengths uniform in
/// `[1, 8·avg_len]` (so the expected overlap count is controlled by
/// `avg_len`). Connectivity is repaired **inside the interval model**: a
/// sweep stretches any interval that would start a new component back to
/// the current maximum right endpoint, so the result is still a genuine
/// interval graph with the returned representation.
pub fn random_interval_graph(
    n: usize,
    avg_len: u64,
    rng: &mut impl Rng,
) -> Result<(Graph, IntervalRep), GraphError> {
    if n == 0 {
        return Err(GraphError::Empty);
    }
    let space = (n as u64) * 4;
    let mut intervals: Vec<(u64, u64)> = (0..n)
        .map(|_| {
            let l = rng.gen_range(0..space);
            let len = rng.gen_range(1..=avg_len.max(1) * 8);
            (l, l + len)
        })
        .collect();
    repair_connectivity(&mut intervals);
    let rep = IntervalRep { intervals };
    let g = rep.to_graph()?;
    Ok((g, rep))
}

/// Random **unit** interval graph (all lengths equal), same repair rule.
pub fn random_unit_interval_graph(
    n: usize,
    length: u64,
    rng: &mut impl Rng,
) -> Result<(Graph, IntervalRep), GraphError> {
    if n == 0 {
        return Err(GraphError::Empty);
    }
    let space = (n as u64) * 4;
    let mut intervals: Vec<(u64, u64)> = (0..n)
        .map(|_| {
            let l = rng.gen_range(0..space);
            (l, l + length.max(1))
        })
        .collect();
    repair_connectivity(&mut intervals);
    let rep = IntervalRep { intervals };
    let g = rep.to_graph()?;
    Ok((g, rep))
}

/// Stretches intervals left so the union of intervals is one contiguous
/// segment (⇒ the interval graph is connected).
fn repair_connectivity(intervals: &mut [(u64, u64)]) {
    let mut order: Vec<usize> = (0..intervals.len()).collect();
    order.sort_unstable_by_key(|&i| intervals[i]);
    let mut max_r = intervals[order[0]].1;
    for &i in order.iter().skip(1) {
        let (l, r) = intervals[i];
        if l > max_r {
            intervals[i].0 = max_r; // stretch left edge back to the frontier
        }
        max_r = max_r.max(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nav_graph::components::is_connected;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn graph_matches_pairwise_overlaps() {
        let rep = IntervalRep {
            intervals: vec![(0, 2), (1, 3), (4, 5), (2, 4)],
        };
        let g = rep.to_graph().unwrap();
        for u in 0..4u32 {
            for v in (u + 1)..4u32 {
                assert_eq!(
                    g.has_edge(u, v),
                    rep.overlaps(u, v),
                    "mismatch at ({u},{v})"
                );
            }
        }
        // 0-1 overlap, 1-3 overlap, 0-3 touch at 2, 2-3 touch at 4, not 0-2.
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 3));
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn random_graphs_are_connected_and_consistent() {
        for seed in 0..5u64 {
            let (g, rep) = random_interval_graph(300, 4, &mut rng(seed)).unwrap();
            assert!(is_connected(&g), "seed {seed}");
            assert_eq!(g.num_nodes(), 300);
            // Spot-check edge consistency on a sample of pairs.
            for u in (0..300u32).step_by(17) {
                for v in (1..300u32).step_by(23) {
                    if u != v {
                        assert_eq!(g.has_edge(u, v), rep.overlaps(u, v));
                    }
                }
            }
        }
    }

    #[test]
    fn unit_interval_connected() {
        let (g, rep) = random_unit_interval_graph(200, 6, &mut rng(7)).unwrap();
        assert!(is_connected(&g));
        // Unit lengths may be stretched by repair: lengths are >= original.
        assert!(rep.intervals.iter().all(|&(l, r)| l <= r));
    }

    #[test]
    fn zero_nodes_rejected() {
        assert!(random_interval_graph(0, 3, &mut rng(0)).is_err());
    }

    #[test]
    fn single_interval() {
        let (g, _) = random_interval_graph(1, 3, &mut rng(0)).unwrap();
        assert_eq!(g.num_nodes(), 1);
    }

    #[test]
    fn repair_makes_union_contiguous() {
        let mut iv = vec![(0u64, 1u64), (10, 12), (5, 6), (30, 31)];
        repair_connectivity(&mut iv);
        let mut sorted = iv.clone();
        sorted.sort_unstable();
        let mut max_r = sorted[0].1;
        for &(l, r) in &sorted[1..] {
            assert!(l <= max_r, "gap before ({l},{r})");
            max_r = max_r.max(r);
        }
    }
}
