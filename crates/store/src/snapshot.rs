//! The versioned snapshot format and its capture/restore endpoints.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! "NAVS"  u16 version  u16 section_count
//! section table: section_count × { u16 id, u16 reserved, u64 offset, u64 len }
//! section bodies (offsets are file-absolute)
//! ```
//!
//! Sections: `GRAPH` (node count + edge list, enough to rebuild the CSR
//! deterministically), `SCHEME` (a tag, plus the explicit contact table
//! for realized schemes — the joint draw itself, never the distribution
//! it came from), `CONFIG` (every answer-determining engine knob; thread
//! count and observability are restore-time parameters because they are
//! answer-invisible by contract), `SHARDS` (front counters plus per
//! shard the lifetime counter, churn epoch, and resident rows with their
//! SLRU tier), and `WIDTH` (the engine's MS-BFS lane width — one byte,
//! defaulting to 64 lanes when absent so pre-width snapshots restore
//! unchanged). Readers skip unknown section ids, so the format can grow
//! sections without a version bump; a version bump means the header
//! itself changed.

use crate::cursor::Cur;
use crate::StoreError;
use nav_core::ball::BallScheme;
use nav_core::faulty::{FailurePlan, FaultConfig};
use nav_core::realization::Realization;
use nav_core::sampler::SamplerMode;
use nav_core::scheme::AugmentationScheme;
use nav_core::uniform::{NoAugmentation, UniformScheme};
use nav_engine::{AdmissionPolicy, Engine, EngineConfig, EngineState, ShardedEngine};
use nav_graph::distance::DistRowBuf;
use nav_graph::msbfs::LaneWidth;
use nav_graph::{GraphBuilder, NodeId};
use nav_obs::ObsConfig;
use std::sync::Arc;

/// First bytes of a snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"NAVS";

/// Format version this module writes and reads.
pub const SNAPSHOT_VERSION: u16 = 1;

const SEC_GRAPH: u16 = 1;
const SEC_SCHEME: u16 = 2;
const SEC_CONFIG: u16 = 3;
const SEC_SHARDS: u16 = 4;
const SEC_WIDTH: u16 = 5;

/// Sentinel in a serialized contact table for "no long-range link".
const NO_CONTACT: u32 = u32::MAX;

/// Row flags in the `SHARDS` section.
const FLAG_PROTECTED: u8 = 1 << 0;
const FLAG_WIDE: u8 = 1 << 1;

/// The augmentation scheme a snapshot carries. Distributional schemes
/// serialize as a tag (they are pure functions of the graph), while a
/// realized scheme serializes its actual per-node joint draw — restoring
/// from the tag alone would re-roll every link and break bit-identical
/// replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchemeSpec {
    /// No augmentation (`nav_core::uniform::NoAugmentation`).
    None,
    /// The uniform scheme (`nav_core::uniform::UniformScheme`).
    Uniform,
    /// The Theorem-4 ball scheme, rebuilt from the graph
    /// (`nav_core::ball::BallScheme::new`).
    Ball,
    /// A fixed realization: entry `u` is node `u`'s long-range contact.
    Realized(Vec<Option<NodeId>>),
}

impl SchemeSpec {
    /// Captures a serving engine's scheme. Any scheme exposing an
    /// explicit contact table snapshots as [`SchemeSpec::Realized`];
    /// the known distributional schemes snapshot by name; anything else
    /// is refused rather than silently re-rolled at restore.
    pub fn capture(scheme: &dyn AugmentationScheme) -> Result<Self, StoreError> {
        if let Some(table) = scheme.contact_table() {
            return Ok(SchemeSpec::Realized(table));
        }
        match scheme.name().as_str() {
            "none" => Ok(SchemeSpec::None),
            "uniform" => Ok(SchemeSpec::Uniform),
            "ball(thm4)" => Ok(SchemeSpec::Ball),
            other => Err(StoreError::UnsupportedScheme(other.to_string())),
        }
    }

    /// Builds a boxed scheme for serving `g`. Each call produces an
    /// identical scheme, which is exactly what a sharded front's
    /// scheme factory requires for bit-identity.
    pub fn build(&self, g: &nav_graph::Graph) -> Box<dyn AugmentationScheme + Send> {
        match self {
            SchemeSpec::None => Box::new(NoAugmentation),
            SchemeSpec::Uniform => Box::new(UniformScheme),
            SchemeSpec::Ball => Box::new(BallScheme::new(g)),
            SchemeSpec::Realized(table) => Box::new(Realization::from_contacts(table.clone())),
        }
    }

    fn tag(&self) -> u8 {
        match self {
            SchemeSpec::None => 0,
            SchemeSpec::Uniform => 1,
            SchemeSpec::Ball => 2,
            SchemeSpec::Realized(_) => 3,
        }
    }
}

/// A decoded (or about-to-be-encoded) snapshot of a serving front: the
/// construction inputs plus the warm state. See the module docs for the
/// byte layout and [`Snapshot::capture`] / [`Snapshot::restore`] /
/// [`Snapshot::encode`] / [`Snapshot::decode`] for the four endpoints.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Number of nodes of the served graph.
    pub num_nodes: usize,
    /// The graph's undirected edge list (each edge once), enough to
    /// rebuild the CSR deterministically.
    pub edges: Vec<(NodeId, NodeId)>,
    /// The augmentation scheme.
    pub scheme: SchemeSpec,
    /// Master RNG seed ([`EngineConfig::seed`]).
    pub seed: u64,
    /// Row-cache byte capacity ([`EngineConfig::cache_bytes`]).
    pub cache_bytes: usize,
    /// Cache replacement policy ([`EngineConfig::admission`]).
    pub admission: AdmissionPolicy,
    /// Per-step sampling backend ([`EngineConfig::sampler`]).
    pub sampler: SamplerMode,
    /// Fault injection config ([`EngineConfig::fault`]) — the churn plan
    /// travels with the snapshot so a restored front keeps flipping
    /// epochs on the same schedule.
    pub fault: FaultConfig,
    /// MS-BFS lane width ([`EngineConfig::width`]). Travels with the
    /// snapshot because batched-mode answers are reproducible only at
    /// the width that produced them; snapshots written before the
    /// `WIDTH` section existed restore at the 64-lane default.
    pub width: LaneWidth,
    /// Queries answered at the front (the next `serve` RNG base).
    pub front_served: u64,
    /// Batches accepted at the front.
    pub front_batches: u64,
    /// Per-shard resumable state, in shard order.
    pub shards: Vec<EngineState>,
}

impl Snapshot {
    /// Freezes a serving front into a snapshot: graph, scheme, the
    /// answer-determining config, front counters, and every shard's
    /// lifetime counter, churn epoch, and resident rows. The front is
    /// not disturbed. Errors only when the scheme cannot be represented
    /// ([`StoreError::UnsupportedScheme`]).
    pub fn capture(front: &ShardedEngine) -> Result<Self, StoreError> {
        let g = front.graph();
        let cfg = front.config();
        Ok(Snapshot {
            num_nodes: g.num_nodes(),
            edges: g.edge_list(),
            scheme: SchemeSpec::capture(front.shards()[0].scheme())?,
            seed: cfg.seed,
            cache_bytes: cfg.cache_bytes,
            admission: cfg.admission,
            sampler: cfg.sampler,
            fault: cfg.fault,
            width: cfg.width,
            front_served: front.queries_served(),
            front_batches: front.front_batches(),
            shards: front.shards().iter().map(Engine::export_state).collect(),
        })
    }

    /// Rehydrates a serving front. `threads` and `obs` are restore-time
    /// parameters — both are answer-invisible by the engine's
    /// determinism contract, so a snapshot taken at one thread count
    /// restores at any other without changing a bit. Per-shard state is
    /// imported with the churn epoch set before the rows, so a restored
    /// cache is warm *and* correctly epoch-tagged.
    pub fn restore(&self, threads: usize, obs: ObsConfig) -> Result<ShardedEngine, StoreError> {
        if let SchemeSpec::Realized(table) = &self.scheme {
            if table.len() != self.num_nodes {
                return Err(StoreError::Malformed("contact table length != node count"));
            }
            if table
                .iter()
                .flatten()
                .any(|&c| (c as usize) >= self.num_nodes)
            {
                return Err(StoreError::Malformed("contact out of node range"));
            }
        }
        let g = GraphBuilder::from_edges(self.num_nodes, self.edges.iter().copied())?;
        let cfg = EngineConfig {
            seed: self.seed,
            threads,
            cache_bytes: self.cache_bytes,
            sampler: self.sampler,
            admission: self.admission,
            fault: self.fault,
            width: self.width,
            obs,
        };
        if self.shards.is_empty() {
            return Err(StoreError::Malformed("snapshot carries no shards"));
        }
        let mut front =
            ShardedEngine::new(g.clone(), || self.scheme.build(&g), cfg, self.shards.len());
        front.restore_front(self.front_served, self.front_batches);
        for (engine, state) in front.shards_mut().iter_mut().zip(&self.shards) {
            engine.import_state(state.clone());
        }
        Ok(front)
    }

    /// Serializes to the versioned section-table format.
    pub fn encode(&self) -> Vec<u8> {
        let graph = self.encode_graph();
        let scheme = self.encode_scheme();
        let config = self.encode_config();
        let shards = self.encode_shards();
        let width = [self.width.words() as u8];
        let sections: [(u16, &[u8]); 5] = [
            (SEC_GRAPH, &graph),
            (SEC_SCHEME, &scheme),
            (SEC_CONFIG, &config),
            (SEC_SHARDS, &shards),
            (SEC_WIDTH, &width),
        ];
        // Header: magic(4) + version(2) + count(2), then 20 bytes per
        // table entry (id + reserved + offset + len).
        let table_len = 8 + 20 * sections.len();
        let total: usize = table_len + sections.iter().map(|(_, b)| b.len()).sum::<usize>();
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        put_u16(&mut out, SNAPSHOT_VERSION);
        put_u16(&mut out, sections.len() as u16);
        let mut offset = table_len as u64;
        for (id, body) in &sections {
            put_u16(&mut out, *id);
            put_u16(&mut out, 0); // reserved
            put_u64(&mut out, offset);
            put_u64(&mut out, body.len() as u64);
            offset += body.len() as u64;
        }
        for (_, body) in &sections {
            out.extend_from_slice(body);
        }
        out
    }

    fn encode_graph(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(16 + 8 * self.edges.len());
        put_u64(&mut b, self.num_nodes as u64);
        put_u64(&mut b, self.edges.len() as u64);
        for &(u, v) in &self.edges {
            put_u32(&mut b, u);
            put_u32(&mut b, v);
        }
        b
    }

    fn encode_scheme(&self) -> Vec<u8> {
        let mut b = vec![self.scheme.tag()];
        if let SchemeSpec::Realized(table) = &self.scheme {
            put_u64(&mut b, table.len() as u64);
            for &c in table {
                put_u32(&mut b, c.unwrap_or(NO_CONTACT));
            }
        }
        b
    }

    fn encode_config(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(64);
        put_u64(&mut b, self.seed);
        put_u64(&mut b, self.cache_bytes as u64);
        b.push(match self.admission {
            AdmissionPolicy::Lru => 0,
            AdmissionPolicy::Segmented => 1,
        });
        b.push(match self.sampler {
            SamplerMode::Scalar => 0,
            SamplerMode::Batched => 1,
        });
        put_u64(&mut b, self.fault.drop_prob.to_bits());
        match self.fault.plan {
            None => b.push(0),
            Some(plan) => {
                b.push(1);
                put_u64(&mut b, plan.seed());
                put_u32(&mut b, plan.epochs());
                put_u64(&mut b, plan.period());
                put_u64(&mut b, plan.down_frac().to_bits());
            }
        }
        b
    }

    fn encode_shards(&self) -> Vec<u8> {
        let mut b = Vec::new();
        put_u64(&mut b, self.front_served);
        put_u64(&mut b, self.front_batches);
        put_u16(&mut b, self.shards.len().min(u16::MAX as usize) as u16);
        for shard in &self.shards {
            put_u64(&mut b, shard.served);
            put_u64(&mut b, shard.epoch);
            put_u32(&mut b, shard.rows.len().min(u32::MAX as usize) as u32);
            for (key, row, protected) in &shard.rows {
                put_u32(&mut b, *key);
                let mut flags = 0u8;
                if *protected {
                    flags |= FLAG_PROTECTED;
                }
                if !row.is_narrow() {
                    flags |= FLAG_WIDE;
                }
                b.push(flags);
                put_u32(&mut b, row.len().min(u32::MAX as usize) as u32);
                match row.as_ref() {
                    DistRowBuf::Narrow(v) => {
                        for &d in v {
                            b.extend_from_slice(&d.to_le_bytes());
                        }
                    }
                    DistRowBuf::Wide(v) => {
                        for &d in v {
                            put_u32(&mut b, d);
                        }
                    }
                }
            }
        }
        b
    }

    /// Deserializes a snapshot. Total over arbitrary bytes: truncation,
    /// bit flips, forged section offsets/lengths, and forged element
    /// counts all return a [`StoreError`] — counts are validated against
    /// the bytes that actually remain before any allocation, and every
    /// decoded value that could make [`Snapshot::restore`] panic
    /// (drop probabilities, churn-plan parameters, scheme tags) is
    /// range-checked here.
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        let mut cur = Cur::new(bytes);
        if cur.take(4, "snapshot magic")? != SNAPSHOT_MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = cur.u16("snapshot version")?;
        if version != SNAPSHOT_VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let section_count = cur.u16("section count")? as usize;
        let mut graph = None;
        let mut scheme = None;
        let mut config = None;
        let mut shards = None;
        let mut width = None;
        for _ in 0..section_count {
            let id = cur.u16("section id")?;
            cur.u16("section reserved")?;
            let offset = cur.u64("section offset")?;
            let len = cur.u64("section length")?;
            let end = offset
                .checked_add(len)
                .ok_or(StoreError::Malformed("section range overflows"))?;
            if end > bytes.len() as u64 {
                return Err(StoreError::Truncated("section body"));
            }
            let body = &bytes[offset as usize..end as usize];
            let slot = match id {
                SEC_GRAPH => &mut graph,
                SEC_SCHEME => &mut scheme,
                SEC_CONFIG => &mut config,
                SEC_SHARDS => &mut shards,
                SEC_WIDTH => &mut width,
                // Unknown sections are future format growth: skip them.
                _ => continue,
            };
            if slot.replace(body).is_some() {
                return Err(StoreError::Malformed("duplicate section"));
            }
        }
        let (num_nodes, edges) =
            decode_graph(graph.ok_or(StoreError::Malformed("missing graph section"))?)?;
        let scheme = decode_scheme(scheme.ok_or(StoreError::Malformed("missing scheme section"))?)?;
        let (seed, cache_bytes, admission, sampler, fault) =
            decode_config(config.ok_or(StoreError::Malformed("missing config section"))?)?;
        let (front_served, front_batches, shards) =
            decode_shards(shards.ok_or(StoreError::Malformed("missing shards section"))?)?;
        // Absent on snapshots written before the section existed: those
        // engines always ran 64-lane MS-BFS, so the default is exact.
        let width = width.map_or(Ok(LaneWidth::default()), decode_width)?;
        Ok(Snapshot {
            num_nodes,
            edges,
            scheme,
            seed,
            cache_bytes,
            admission,
            sampler,
            fault,
            width,
            front_served,
            front_batches,
            shards,
        })
    }
}

fn decode_graph(body: &[u8]) -> Result<(usize, Vec<(NodeId, NodeId)>), StoreError> {
    let mut cur = Cur::new(body);
    let n = cur.u64("node count")?;
    if n > u32::MAX as u64 {
        return Err(StoreError::Malformed("node count exceeds NodeId range"));
    }
    let m = cur.u64("edge count")? as usize;
    if cur.remaining() / 8 < m {
        return Err(StoreError::Truncated("edge list"));
    }
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let u = cur.u32("edge endpoint")?;
        let v = cur.u32("edge endpoint")?;
        edges.push((u, v));
    }
    cur.done("trailing bytes in graph section")?;
    Ok((n as usize, edges))
}

fn decode_scheme(body: &[u8]) -> Result<SchemeSpec, StoreError> {
    let mut cur = Cur::new(body);
    let spec = match cur.u8("scheme tag")? {
        0 => SchemeSpec::None,
        1 => SchemeSpec::Uniform,
        2 => SchemeSpec::Ball,
        3 => {
            let len = cur.u64("contact table length")? as usize;
            if cur.remaining() / 4 < len {
                return Err(StoreError::Truncated("contact table"));
            }
            let mut table = Vec::with_capacity(len);
            for _ in 0..len {
                let c = cur.u32("contact")?;
                table.push((c != NO_CONTACT).then_some(c));
            }
            SchemeSpec::Realized(table)
        }
        _ => return Err(StoreError::Malformed("unknown scheme tag")),
    };
    cur.done("trailing bytes in scheme section")?;
    Ok(spec)
}

fn decode_width(body: &[u8]) -> Result<LaneWidth, StoreError> {
    let mut cur = Cur::new(body);
    let width = match cur.u8("lane width")? {
        1 => LaneWidth::W64,
        2 => LaneWidth::W128,
        4 => LaneWidth::W256,
        _ => return Err(StoreError::Malformed("unknown lane width")),
    };
    cur.done("trailing bytes in width section")?;
    Ok(width)
}

type ConfigFields = (u64, usize, AdmissionPolicy, SamplerMode, FaultConfig);

fn decode_config(body: &[u8]) -> Result<ConfigFields, StoreError> {
    let mut cur = Cur::new(body);
    let seed = cur.u64("seed")?;
    let cache_bytes = usize::try_from(cur.u64("cache bytes")?)
        .map_err(|_| StoreError::Malformed("cache bytes exceed usize"))?;
    let admission = match cur.u8("admission policy")? {
        0 => AdmissionPolicy::Lru,
        1 => AdmissionPolicy::Segmented,
        _ => return Err(StoreError::Malformed("unknown admission policy")),
    };
    let sampler = match cur.u8("sampler mode")? {
        0 => SamplerMode::Scalar,
        1 => SamplerMode::Batched,
        _ => return Err(StoreError::Malformed("unknown sampler mode")),
    };
    let drop_prob = cur.f64("drop probability")?;
    // Range-check here so a decoded snapshot can never make the engine's
    // construction-time validation panic (NaN fails the contains check).
    if !(0.0..=1.0).contains(&drop_prob) {
        return Err(StoreError::Malformed("drop probability outside [0, 1]"));
    }
    let plan = match cur.u8("plan presence")? {
        0 => None,
        1 => {
            let plan_seed = cur.u64("plan seed")?;
            let epochs = cur.u32("plan epochs")?;
            let period = cur.u64("plan period")?;
            let down_frac = cur.f64("plan down fraction")?;
            if epochs == 0 || period == 0 || !(0.0..=1.0).contains(&down_frac) {
                return Err(StoreError::Malformed("invalid failure plan"));
            }
            Some(FailurePlan::new(plan_seed, epochs, period, down_frac))
        }
        _ => return Err(StoreError::Malformed("invalid plan presence byte")),
    };
    cur.done("trailing bytes in config section")?;
    Ok((
        seed,
        cache_bytes,
        admission,
        sampler,
        FaultConfig { drop_prob, plan },
    ))
}

fn decode_shards(body: &[u8]) -> Result<(u64, u64, Vec<EngineState>), StoreError> {
    let mut cur = Cur::new(body);
    let front_served = cur.u64("front served")?;
    let front_batches = cur.u64("front batches")?;
    let shard_count = cur.u16("shard count")? as usize;
    if shard_count == 0 {
        return Err(StoreError::Malformed("snapshot carries no shards"));
    }
    let mut shards = Vec::with_capacity(shard_count.min(cur.remaining() / 20 + 1));
    for _ in 0..shard_count {
        let served = cur.u64("shard served")?;
        let epoch = cur.u64("shard epoch")?;
        let row_count = cur.u32("row count")? as usize;
        // A row entry is at least 9 header bytes, so a forged count must
        // exceed what the bytes can hold before any allocation happens.
        if cur.remaining() / 9 < row_count {
            return Err(StoreError::Truncated("cache rows"));
        }
        let mut rows = Vec::with_capacity(row_count);
        for _ in 0..row_count {
            let key = cur.u32("row key")?;
            let flags = cur.u8("row flags")?;
            if flags & !(FLAG_PROTECTED | FLAG_WIDE) != 0 {
                return Err(StoreError::Malformed("unknown row flags"));
            }
            let len = cur.u32("row length")? as usize;
            let wide = flags & FLAG_WIDE != 0;
            let width = if wide { 4 } else { 2 };
            if cur.remaining() / width < len {
                return Err(StoreError::Truncated("row values"));
            }
            let row = if wide {
                let mut v = Vec::with_capacity(len);
                for _ in 0..len {
                    v.push(cur.u32("row value")?);
                }
                DistRowBuf::Wide(v)
            } else {
                let mut v = Vec::with_capacity(len);
                for _ in 0..len {
                    let b = cur.take(2, "row value")?;
                    v.push(u16::from_le_bytes([b[0], b[1]]));
                }
                DistRowBuf::Narrow(v)
            };
            rows.push((key, Arc::new(row), flags & FLAG_PROTECTED != 0));
        }
        shards.push(EngineState {
            served,
            epoch,
            rows,
        });
    }
    cur.done("trailing bytes in shards section")?;
    Ok((front_served, front_batches, shards))
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use nav_engine::QueryBatch;
    use nav_graph::Graph;

    fn path(n: usize) -> Graph {
        GraphBuilder::from_edges(n, (0..n as NodeId - 1).map(|u| (u, u + 1))).unwrap()
    }

    fn warm_front(shards: usize) -> ShardedEngine {
        let cfg = EngineConfig {
            seed: 42,
            threads: 1,
            cache_bytes: 1 << 20,
            admission: AdmissionPolicy::Segmented,
            fault: FaultConfig {
                drop_prob: 0.1,
                plan: Some(FailurePlan::new(7, 3, 64, 0.1)),
            },
            ..EngineConfig::default()
        };
        let mut front = ShardedEngine::new(path(48), || Box::new(UniformScheme), cfg, shards);
        let pairs: Vec<(NodeId, NodeId)> = (0..10).map(|i| (i, 47 - (i % 4))).collect();
        front.serve(&QueryBatch::from_pairs(&pairs, 3)).unwrap();
        front
    }

    fn snapshots_eq(a: &Snapshot, b: &Snapshot) -> bool {
        // Arc rows make derived equality awkward; byte equality of the
        // canonical encoding is the same statement.
        a.encode() == b.encode()
    }

    #[test]
    fn encode_decode_roundtrip_is_identity() {
        let snap = Snapshot::capture(&warm_front(3)).unwrap();
        let bytes = snap.encode();
        let back = Snapshot::decode(&bytes).unwrap();
        assert!(snapshots_eq(&snap, &back));
        assert_eq!(back.num_nodes, 48);
        assert_eq!(back.shards.len(), 3);
        assert_eq!(back.front_served, 10);
        assert_eq!(back.front_batches, 1);
        assert_eq!(back.admission, AdmissionPolicy::Segmented);
        assert!(back.shards.iter().any(|s| !s.rows.is_empty()));
    }

    #[test]
    fn restore_continues_the_stream_bit_identically() {
        let mut uninterrupted = warm_front(2);
        let snap = Snapshot::capture(&warm_front(2)).unwrap();
        let mut restored = snap.restore(2, ObsConfig::default()).unwrap();
        assert_eq!(restored.queries_served(), 10);
        let next: Vec<(NodeId, NodeId)> = (0..6).map(|i| (i * 5, 40 + i)).collect();
        let batch = QueryBatch::from_pairs(&next, 4);
        let a = uninterrupted.serve(&batch).unwrap();
        let b = restored.serve(&batch).unwrap();
        assert!(a.answers.iter().zip(&b.answers).all(|(x, y)| x.bits_eq(y)));
        // The restored cache is warm: the repeated hot targets hit.
        assert!(restored.cache_stats().hits > 0);
    }

    #[test]
    fn lane_width_survives_the_snapshot_and_defaults_when_absent() {
        let cfg = EngineConfig {
            seed: 11,
            threads: 1,
            width: LaneWidth::W256,
            ..EngineConfig::default()
        };
        let mut front = ShardedEngine::new(path(48), || Box::new(UniformScheme), cfg, 2);
        let pairs: Vec<(NodeId, NodeId)> = (0..8).map(|i| (i, 40 + (i % 4))).collect();
        front.serve(&QueryBatch::from_pairs(&pairs, 2)).unwrap();
        let snap = Snapshot::capture(&front).unwrap();
        assert_eq!(snap.width, LaneWidth::W256);
        let bytes = snap.encode();
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back.width, LaneWidth::W256);
        let restored = back.restore(1, ObsConfig::default()).unwrap();
        assert_eq!(restored.config().width, LaneWidth::W256);

        // A pre-width snapshot (no WIDTH section) restores at 64 lanes:
        // strip the section by rewriting the table without its entry.
        let count = u16::from_le_bytes([bytes[6], bytes[7]]) as usize;
        let mut stripped = bytes[..6].to_vec();
        put_u16(&mut stripped, (count - 1) as u16);
        for i in 0..count {
            let e = &bytes[8 + 20 * i..8 + 20 * (i + 1)];
            let id = u16::from_le_bytes([e[0], e[1]]);
            if id == SEC_WIDTH {
                continue;
            }
            stripped.extend_from_slice(e);
        }
        // Offsets in the kept entries still point into `bytes`' body
        // layout, so append the original bodies at the original offsets
        // by padding the removed table entry's 20 bytes.
        stripped.extend_from_slice(&[0u8; 20][..]);
        stripped.extend_from_slice(&bytes[8 + 20 * count..]);
        let old = Snapshot::decode(&stripped).unwrap();
        assert_eq!(old.width, LaneWidth::W64);

        // A corrupt width byte is refused, not defaulted.
        let mut bad = bytes.clone();
        let widx = bytes.len() - 1; // WIDTH is the last, 1-byte section
        bad[widx] = 3;
        assert!(matches!(
            Snapshot::decode(&bad).unwrap_err(),
            StoreError::Malformed("unknown lane width")
        ));
    }

    #[test]
    fn realized_scheme_snapshots_its_joint_draw() {
        let g = path(32);
        let table: Vec<Option<NodeId>> = (0..32u32).map(|u| Some((u * 7) % 32)).collect();
        let real = Realization::from_contacts(table.clone());
        let cfg = EngineConfig {
            seed: 5,
            threads: 1,
            ..EngineConfig::default()
        };
        let real2 = real.clone();
        let front = ShardedEngine::new(g, move || Box::new(real2.clone()), cfg, 2);
        let snap = Snapshot::capture(&front).unwrap();
        assert_eq!(snap.scheme, SchemeSpec::Realized(table.clone()));
        let back = Snapshot::decode(&snap.encode()).unwrap();
        assert_eq!(back.scheme, SchemeSpec::Realized(table));
        let restored = back.restore(1, ObsConfig::default()).unwrap();
        assert_eq!(restored.scheme_name(), "realized");
    }

    #[test]
    fn unknown_sections_are_skipped() {
        let snap = Snapshot::capture(&warm_front(1)).unwrap();
        let mut bytes = snap.encode();
        // Append a section body and splice a table entry for an unknown
        // id by re-encoding with one extra table slot: simplest is to
        // rewrite the file: header with count+1, shifted offsets.
        let body_extra = b"future-section-payload";
        let old_count = u16::from_le_bytes([bytes[6], bytes[7]]) as usize;
        let old_table = 8 + 20 * old_count;
        let mut out = bytes[..6].to_vec();
        put_u16(&mut out, (old_count + 1) as u16);
        for i in 0..old_count {
            let e = &bytes[8 + 20 * i..8 + 20 * (i + 1)];
            let id = u16::from_le_bytes([e[0], e[1]]);
            let off = u64::from_le_bytes(e[4..12].try_into().unwrap());
            put_u16(&mut out, id);
            put_u16(&mut out, 0);
            put_u64(&mut out, off + 20); // one extra table entry shifts bodies
            put_u64(&mut out, u64::from_le_bytes(e[12..].try_into().unwrap()));
        }
        put_u16(&mut out, 999); // unknown id
        put_u16(&mut out, 0);
        put_u64(&mut out, (bytes.len() + 20) as u64);
        put_u64(&mut out, body_extra.len() as u64);
        out.extend_from_slice(&bytes[old_table..]);
        out.extend_from_slice(body_extra);
        bytes = out;
        let back = Snapshot::decode(&bytes).unwrap();
        assert!(snapshots_eq(&snap, &back));
    }

    #[test]
    fn header_damage_is_rejected() {
        let bytes = Snapshot::capture(&warm_front(1)).unwrap().encode();
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            Snapshot::decode(&bad).unwrap_err(),
            StoreError::BadMagic
        ));
        let mut newer = bytes.clone();
        newer[4] = 9;
        assert!(matches!(
            Snapshot::decode(&newer).unwrap_err(),
            StoreError::UnsupportedVersion(_)
        ));
        assert!(Snapshot::decode(&bytes[..7]).is_err());
    }

    #[test]
    fn every_truncation_errors_cleanly() {
        let bytes = Snapshot::capture(&warm_front(2)).unwrap().encode();
        for cut in 0..bytes.len() {
            assert!(
                Snapshot::decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }
}
