//! The blocking client side of the protocol: [`NetClient`] (one
//! connection, no retries) and [`RetryingClient`] (reconnect-and-replay
//! with bounded, jittered backoff — same answers, bit for bit).

use crate::frame::{
    read_frame, write_frame, ErrorCode, ErrorFrame, Frame, MetricsSnapshot, ReadError, Request,
    SnapshotRequest, StatsReply, StatsRequest, DEFAULT_MAX_PAYLOAD,
};
use nav_core::sampler::SamplerMode;
use nav_core::trial::PairStats;
use nav_engine::QueryBatch;
use std::fmt;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum NetError {
    /// Transport failure (connect, read, write, or mid-frame EOF).
    Io(io::Error),
    /// The server's bytes did not decode as a frame.
    Protocol(crate::frame::FrameError),
    /// The server answered with a typed refusal.
    Remote(ErrorFrame),
    /// The server closed, or answered with a frame kind that is not an
    /// answer.
    UnexpectedReply(&'static str),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport: {e}"),
            NetError::Protocol(e) => write!(f, "protocol: {e}"),
            NetError::Remote(e) => write!(f, "server refused ({:?}): {}", e.code, e.message),
            NetError::UnexpectedReply(what) => write!(f, "unexpected reply: {what}"),
        }
    }
}

impl NetError {
    /// `true` when retrying the same request over a fresh connection can
    /// succeed: transport failures, a mid-conversation close, and the
    /// server's typed [`crate::frame::ErrorCode::Overloaded`] refusal.
    /// Protocol violations and deterministic refusals (bad handle, bad
    /// endpoint, over-limit batch …) stay `false` — resending the same
    /// bytes would only fail the same way.
    pub fn is_retryable(&self) -> bool {
        match self {
            NetError::Io(_) => true,
            NetError::Remote(e) => e.code.is_retryable(),
            NetError::UnexpectedReply(what) => *what == "connection closed",
            NetError::Protocol(_) => false,
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<ReadError> for NetError {
    fn from(e: ReadError) -> Self {
        match e {
            ReadError::Io(e) => NetError::Io(e),
            ReadError::Frame(e) => NetError::Protocol(e),
        }
    }
}

/// Refuses a request the wire cannot carry faithfully. The query frame
/// encodes `trials` as `u32`; older builds clamped larger values, which
/// silently answered a *different* question. Now the client refuses with
/// a typed, non-retryable [`ErrorCode::InvalidQuery`] before any bytes
/// hit the socket.
fn validate_request(req: &Request) -> Result<(), NetError> {
    for q in &req.queries {
        if q.trials > u32::MAX as usize {
            return Err(NetError::Remote(ErrorFrame {
                code: ErrorCode::InvalidQuery,
                message: format!(
                    "query ({}, {}) asks for {} trials; the wire carries at most {}",
                    q.s,
                    q.t,
                    q.trials,
                    u32::MAX
                ),
            }));
        }
    }
    Ok(())
}

/// A blocking connection to a [`crate::NetServer`]. One request is in
/// flight at a time (the protocol is strictly request/response per
/// connection; open more connections for pipelining).
pub struct NetClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    max_frame_bytes: usize,
    /// Cumulative queries sent through [`NetClient::serve`] — the
    /// automatic RNG stream offset, mirroring a local engine's lifetime
    /// counter.
    sent: u64,
}

impl NetClient {
    /// Connects with the default frame bound.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        Self::connect_with(addr, DEFAULT_MAX_PAYLOAD)
    }

    /// Connects with an explicit response-payload bound.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        max_frame_bytes: usize,
    ) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(NetClient {
            reader,
            writer: BufWriter::new(stream),
            max_frame_bytes,
            sent: 0,
        })
    }

    /// Queries sent through [`NetClient::serve`] so far (the next
    /// automatic `rng_base`).
    pub fn queries_sent(&self) -> u64 {
        self.sent
    }

    /// Sends one fully explicit request and waits for the answer. A
    /// request the wire cannot carry faithfully (any query's `trials`
    /// beyond `u32::MAX`) is refused locally with a non-retryable
    /// [`ErrorCode::InvalidQuery`] — never clamped, never sent.
    pub fn request(&mut self, req: Request) -> Result<(Vec<PairStats>, MetricsSnapshot), NetError> {
        validate_request(&req)?;
        write_frame(&mut self.writer, &Frame::Request(req))?;
        match read_frame(&mut self.reader, self.max_frame_bytes)? {
            Some(Frame::Response(resp)) => Ok((resp.answers, resp.metrics)),
            Some(Frame::Error(e)) => Err(NetError::Remote(e)),
            Some(Frame::Request(_) | Frame::StatsRequest(_) | Frame::SnapshotRequest(_)) => {
                Err(NetError::UnexpectedReply("request frame"))
            }
            Some(Frame::Stats(_)) => Err(NetError::UnexpectedReply("stats frame")),
            Some(Frame::SnapshotReply(_)) => Err(NetError::UnexpectedReply("snapshot frame")),
            None => Err(NetError::UnexpectedReply("connection closed")),
        }
    }

    /// Asks the server for its ops snapshot: merged counters, per-stage
    /// latency histograms (engine pipeline stages plus the serving
    /// front's socket/decode/encode timings), and sampled query traces.
    /// `handle` is tenant-checked exactly like a query handle; its shard
    /// byte is ignored — stats always cover the whole front.
    pub fn stats(&mut self, handle: u32) -> Result<StatsReply, NetError> {
        write_frame(
            &mut self.writer,
            &Frame::StatsRequest(StatsRequest { handle }),
        )?;
        match read_frame(&mut self.reader, self.max_frame_bytes)? {
            Some(Frame::Stats(reply)) => Ok(reply),
            Some(Frame::Error(e)) => Err(NetError::Remote(e)),
            Some(Frame::Request(_) | Frame::StatsRequest(_) | Frame::SnapshotRequest(_)) => {
                Err(NetError::UnexpectedReply("request frame"))
            }
            Some(Frame::Response(_)) => Err(NetError::UnexpectedReply("response frame")),
            Some(Frame::SnapshotReply(_)) => Err(NetError::UnexpectedReply("snapshot frame")),
            None => Err(NetError::UnexpectedReply("connection closed")),
        }
    }

    /// Asks the server to capture a durable state snapshot of the engine
    /// behind `handle` and returns the encoded `nav-store` bytes (decode
    /// them with `nav_store::Snapshot::decode`). Tenant-checked exactly
    /// like a query handle; the shard byte is ignored — a snapshot always
    /// covers the whole front.
    pub fn snapshot(&mut self, handle: u32) -> Result<Vec<u8>, NetError> {
        write_frame(
            &mut self.writer,
            &Frame::SnapshotRequest(SnapshotRequest { handle }),
        )?;
        match read_frame(&mut self.reader, self.max_frame_bytes)? {
            Some(Frame::SnapshotReply(reply)) => Ok(reply.bytes),
            Some(Frame::Error(e)) => Err(NetError::Remote(e)),
            Some(Frame::Request(_) | Frame::StatsRequest(_) | Frame::SnapshotRequest(_)) => {
                Err(NetError::UnexpectedReply("request frame"))
            }
            Some(Frame::Response(_)) => Err(NetError::UnexpectedReply("response frame")),
            Some(Frame::Stats(_)) => Err(NetError::UnexpectedReply("stats frame")),
            None => Err(NetError::UnexpectedReply("connection closed")),
        }
    }

    /// Serves one batch the way a local [`nav_engine::Engine::serve`]
    /// does: the client's cumulative query count is the RNG offset, so a
    /// stream of `serve` calls over one client is bit-identical to the
    /// same batches through one local engine — regardless of what other
    /// clients do to the same server.
    pub fn serve(
        &mut self,
        handle: u32,
        sampler: SamplerMode,
        batch: &QueryBatch,
    ) -> Result<(Vec<PairStats>, MetricsSnapshot), NetError> {
        let req = Request {
            handle,
            rng_base: self.sent,
            sampler,
            queries: batch.queries.clone(),
        };
        let out = self.request(req)?;
        self.sent += batch.len() as u64;
        Ok(out)
    }
}

/// Retry knobs for a [`RetryingClient`]: bounded attempts with
/// decorrelated-jitter backoff (each sleep is drawn uniformly from
/// `[backoff_base, 3 × previous]`, capped at `backoff_cap`), seeded so a
/// test run's sleep schedule is reproducible.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total tries per call, including the first (≥ 1; 0 behaves as 1).
    pub max_attempts: u32,
    /// Lower bound of every backoff sleep.
    pub backoff_base: Duration,
    /// Upper bound no backoff sleep exceeds.
    pub backoff_cap: Duration,
    /// Seed of the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(2),
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

/// SplitMix64 step — the jitter stream's generator. Self-contained so
/// the client needs no RNG dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A [`NetClient`] that survives the connection: on a retryable failure
/// (see [`NetError::is_retryable`]) it reconnects and **replays the same
/// request** after a jittered backoff.
///
/// Replay is safe because answers are pure functions of the request:
/// every request carries an explicit `rng_base`, and the base for a
/// [`RetryingClient::serve`] call is fixed *before* the first attempt
/// (the cumulative counter advances only on success). So a stream of
/// batches interrupted by disconnects, server churn epochs, or
/// [`crate::frame::ErrorCode::Overloaded`] sheds is **bit-identical** to
/// the same stream served without a single failure — even if the server
/// executed a request whose response was lost and then executes it
/// again. `tests/net.rs` chaos-tests exactly this equivalence.
pub struct RetryingClient {
    addr: SocketAddr,
    max_frame_bytes: usize,
    policy: RetryPolicy,
    client: Option<NetClient>,
    /// Cumulative queries acknowledged — the next [`RetryingClient::serve`]
    /// call's `rng_base`. Mirrors [`NetClient::queries_sent`].
    sent: u64,
    /// Jitter stream state.
    rng: u64,
    /// Previous sleep in milliseconds (decorrelated-jitter state).
    prev_sleep_ms: u64,
    /// Reconnect-and-replay events over this client's lifetime.
    retries: u64,
}

impl RetryingClient {
    /// Resolves `addr` once and returns a client; the first TCP connect
    /// happens lazily on the first call, so construction cannot fail on
    /// a server that is still coming up.
    pub fn connect(addr: impl ToSocketAddrs, policy: RetryPolicy) -> Result<Self, NetError> {
        Self::connect_with(addr, policy, DEFAULT_MAX_PAYLOAD)
    }

    /// [`RetryingClient::connect`] with an explicit response-payload
    /// bound.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        policy: RetryPolicy,
        max_frame_bytes: usize,
    ) -> Result<Self, NetError> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            NetError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            ))
        })?;
        Ok(RetryingClient {
            addr,
            max_frame_bytes,
            policy,
            client: None,
            sent: 0,
            rng: policy.seed,
            prev_sleep_ms: policy.backoff_base.as_millis() as u64,
            retries: 0,
        })
    }

    /// Queries acknowledged so far (the next automatic `rng_base`).
    pub fn queries_sent(&self) -> u64 {
        self.sent
    }

    /// Reconnect-and-replay events over this client's lifetime.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Chaos hook: drops the live connection (if any) so the next call
    /// must reconnect and replay. The next answer is still bit-identical
    /// — severing loses no stream state, only a socket.
    pub fn sever(&mut self) {
        self.client = None;
    }

    /// The next decorrelated-jitter sleep: uniform in
    /// `[base, 3 × previous]`, capped.
    fn next_backoff(&mut self) -> Duration {
        let base = self.policy.backoff_base.as_millis() as u64;
        let cap = (self.policy.backoff_cap.as_millis() as u64).max(base);
        let hi = self.prev_sleep_ms.saturating_mul(3).clamp(base, cap);
        let span = hi - base;
        let ms = if span == 0 {
            base
        } else {
            base + splitmix64(&mut self.rng) % (span + 1)
        };
        self.prev_sleep_ms = ms;
        Duration::from_millis(ms)
    }

    /// Sends `req` exactly as given, reconnecting and replaying it on
    /// retryable failures up to the policy's attempt bound. The caller
    /// owns `rng_base`, so a replay is byte-identical to the original
    /// send. An unencodable request (oversized `trials`) is refused
    /// before the first connect — [`ErrorCode::InvalidQuery`] is
    /// deterministic, so retrying it would only fail identically.
    pub fn request(&mut self, req: Request) -> Result<(Vec<PairStats>, MetricsSnapshot), NetError> {
        validate_request(&req)?;
        let attempts = self.policy.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let result = match self.client.as_mut() {
                Some(c) => c.request(req.clone()),
                None => match NetClient::connect_with(self.addr, self.max_frame_bytes) {
                    Ok(mut c) => {
                        let r = c.request(req.clone());
                        self.client = Some(c);
                        r
                    }
                    Err(e) => Err(e),
                },
            };
            match result {
                Ok(out) => return Ok(out),
                Err(e) if attempt < attempts && e.is_retryable() => {
                    // The connection's state is unknowable after a failure
                    // mid-conversation; replay only ever runs on a fresh
                    // socket.
                    self.client = None;
                    self.retries += 1;
                    std::thread::sleep(self.next_backoff());
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// [`NetClient::stats`] with retries: reconnects and re-asks on
    /// retryable failures, same policy as [`RetryingClient::request`].
    /// Re-asking is safe for the same reason replaying a request is —
    /// stats are a read, so the worst a retry can observe is a *newer*
    /// snapshot, never a corrupted one.
    pub fn stats(&mut self, handle: u32) -> Result<StatsReply, NetError> {
        let attempts = self.policy.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let result = match self.client.as_mut() {
                Some(c) => c.stats(handle),
                None => match NetClient::connect_with(self.addr, self.max_frame_bytes) {
                    Ok(mut c) => {
                        let r = c.stats(handle);
                        self.client = Some(c);
                        r
                    }
                    Err(e) => Err(e),
                },
            };
            match result {
                Ok(out) => return Ok(out),
                Err(e) if attempt < attempts && e.is_retryable() => {
                    self.client = None;
                    self.retries += 1;
                    std::thread::sleep(self.next_backoff());
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// [`NetClient::serve`] with retries: stamps the batch with the
    /// cumulative offset **before** the first attempt and advances it
    /// only on success, so however many times the request is replayed,
    /// the served stream equals the uninterrupted one bit for bit.
    pub fn serve(
        &mut self,
        handle: u32,
        sampler: SamplerMode,
        batch: &QueryBatch,
    ) -> Result<(Vec<PairStats>, MetricsSnapshot), NetError> {
        let req = Request {
            handle,
            rng_base: self.sent,
            sampler,
            queries: batch.queries.clone(),
        };
        let out = self.request(req)?;
        self.sent += batch.len() as u64;
        Ok(out)
    }
}
