//! The dyadic level/ancestor hierarchy of Theorem 2.
//!
//! Every integer `x ≥ 1` writes uniquely as `x = 2^k + α·2^{k+1}`; `k =
//! level(x)` is the position of the least-significant set bit. The
//! *ancestor* `y(j)` of `x` at level `k + j` keeps the bits of `x` above
//! position `k + j` and sets bit `k + j`:
//! `y(j) = 2^{k+j} + Σ_{i ≥ k+j+1} x_i 2^i`. Applied between consecutive
//! levels this relation forms an infinite binary tree whose level-0 leaves
//! are the odd integers — the hierarchy that the matrix `A` routes along.

/// `level(x)`: position of the least-significant set bit (`x ≥ 1`).
///
/// # Panics
/// Panics if `x == 0`.
#[inline]
pub fn level(x: u64) -> u32 {
    assert!(x >= 1, "level(0) is undefined");
    x.trailing_zeros()
}

/// The `j`-th ancestor `y(j)` of `x` (so `ancestor(x, 0) == x`).
/// Returns `None` on overflow past `u64` range.
#[inline]
pub fn ancestor(x: u64, j: u32) -> Option<u64> {
    let k = level(x);
    let pos = k.checked_add(j)?;
    if pos >= 63 {
        return None;
    }
    // Clear bits 0..=pos, then set bit pos.
    let cleared = x & !((1u64 << (pos + 1)) - 1);
    Some(cleared | (1u64 << pos))
}

/// All ancestors of `x` that lie in `[1, n]`, in increasing `j` order
/// (starting with `x` itself). At most `ν(n) − level(x)` entries.
pub fn ancestors_within(x: u64, n: u64) -> Vec<u64> {
    debug_assert!(x >= 1 && x <= n);
    let mut out = Vec::new();
    let mut j = 0u32;
    while let Some(y) = ancestor(x, j) {
        // Bit position k+j grows with j; once 2^{k+j} > n no later
        // ancestor can be ≤ n.
        if 1u64 << (level(x) + j) > n {
            break;
        }
        if y <= n {
            out.push(y);
        }
        j += 1;
    }
    out
}

/// `ν(n)`: the unique integer with `2^{ν−1} ≤ n < 2^ν` (`n ≥ 1`) — the
/// number of dyadic levels, and the denominator bound of the matrix `A`
/// (every label has at most `ν` ancestors in range).
#[inline]
pub fn nu(n: usize) -> u32 {
    assert!(n >= 1);
    usize::BITS - n.leading_zeros()
}

/// The unique index of maximum level in the non-empty range `[lo, hi]`
/// (1-based, `lo ≤ hi`) — the paper's bag-labeling rule `L(u)`.
///
/// Uniqueness: two multiples of `2^k` in the range would sandwich a
/// multiple of `2^{k+1}`, contradicting maximality.
pub fn max_level_index(lo: u64, hi: u64) -> u64 {
    assert!(1 <= lo && lo <= hi, "bad range [{lo}, {hi}]");
    // Largest k such that some multiple of 2^k lies in [lo, hi].
    for k in (0..63).rev() {
        let step = 1u64 << k;
        let candidate = lo.div_ceil(step) * step;
        if candidate <= hi && candidate >= lo && candidate != 0 {
            return candidate;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_table() {
        assert_eq!(level(1), 0);
        assert_eq!(level(2), 1);
        assert_eq!(level(3), 0);
        assert_eq!(level(4), 2);
        assert_eq!(level(6), 1);
        assert_eq!(level(12), 2);
        assert_eq!(level(1 << 40), 40);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn level_zero_panics() {
        let _ = level(0);
    }

    #[test]
    fn ancestor_chain_of_five() {
        // 5 = 101b, level 0. y(1): clear bits ≤1, set bit 1 → 110b = 6.
        // y(2): clear ≤2, set bit 2 → 100b = 4. y(3) = 8. y(4) = 16.
        assert_eq!(ancestor(5, 0), Some(5));
        assert_eq!(ancestor(5, 1), Some(6));
        assert_eq!(ancestor(5, 2), Some(4));
        assert_eq!(ancestor(5, 3), Some(8));
        assert_eq!(ancestor(5, 4), Some(16));
    }

    #[test]
    fn ancestor_relation_is_binary_tree() {
        // Each node at level k ≥ 1 has exactly two children one level
        // below whose j=1 ancestor is that node, spaced 2^k apart.
        for parent in [2u64, 4, 6, 8, 10, 12] {
            let k = level(parent);
            let children: Vec<u64> = (1..100u64)
                .filter(|&x| level(x) == k - 1 && ancestor(x, 1) == Some(parent))
                .collect();
            assert_eq!(children.len(), 2, "parent {parent}: {children:?}");
            assert_eq!(children[0] + (1 << k), children[1]);
        }
    }

    #[test]
    fn ancestors_within_bounds() {
        let a = ancestors_within(5, 8);
        assert_eq!(a, vec![5, 6, 4, 8]);
        let a = ancestors_within(5, 5);
        assert_eq!(a, vec![5, 4]);
        let a = ancestors_within(1, 1);
        assert_eq!(a, vec![1]);
        let a = ancestors_within(7, 16);
        assert_eq!(a, vec![7, 6, 4, 8, 16]);
    }

    #[test]
    fn ancestors_count_bounded_by_nu() {
        for n in [1usize, 2, 7, 8, 100, 1000] {
            for x in 1..=n as u64 {
                let count = ancestors_within(x, n as u64).len();
                assert!(
                    count <= nu(n) as usize,
                    "x={x} n={n}: {count} > ν={}",
                    nu(n)
                );
            }
        }
    }

    #[test]
    fn nu_table() {
        assert_eq!(nu(1), 1);
        assert_eq!(nu(2), 2);
        assert_eq!(nu(3), 2);
        assert_eq!(nu(4), 3);
        assert_eq!(nu(7), 3);
        assert_eq!(nu(8), 4);
        assert_eq!(nu(1023), 10);
        assert_eq!(nu(1024), 11);
    }

    #[test]
    fn max_level_index_examples() {
        assert_eq!(max_level_index(1, 1), 1);
        assert_eq!(max_level_index(1, 10), 8);
        assert_eq!(max_level_index(5, 7), 6);
        assert_eq!(max_level_index(9, 15), 12);
        assert_eq!(max_level_index(3, 3), 3);
        assert_eq!(max_level_index(33, 63), 48);
    }

    #[test]
    fn max_level_index_is_max_and_unique() {
        for lo in 1..60u64 {
            for hi in lo..60 {
                let m = max_level_index(lo, hi);
                assert!((lo..=hi).contains(&m));
                let lm = level(m);
                let with_level: Vec<u64> = (lo..=hi).filter(|&x| level(x) >= lm).collect();
                assert_eq!(with_level, vec![m], "[{lo},{hi}]");
            }
        }
    }

    #[test]
    fn well_defined_claim_from_paper() {
        // The paper: if i1, i2 share the max level k of an interval then
        // (i1+i2)/2 has a higher level and is inside — i.e. the max-level
        // index is unique. Cross-check on many intervals.
        for lo in 1..40u64 {
            for hi in lo..40 {
                let max_lvl = (lo..=hi).map(level).max().unwrap();
                let count = (lo..=hi).filter(|&x| level(x) == max_lvl).count();
                assert_eq!(count, 1, "[{lo},{hi}]");
            }
        }
    }
}
