//! # nav-decomp — tree/path decompositions and the **pathshape** parameter
//!
//! The paper's Theorem 2 analyses its matrix-based scheme `(M, L)` in terms
//! of a new graph parameter, the *pathshape* `ps(G)`: the minimum over all
//! path-decompositions of the maximum over bags of
//! `shape(X) = min(width(X), length(X))`, where `width(X) = |X| − 1` and
//! `length(X) = max_{x,y ∈ X} dist_G(x, y)`. Pathshape interpolates between
//! pathwidth (Robertson–Seymour) and pathlength (Dourisboure): trees have
//! `ps = O(log n)` (small width bags), interval/AT-free graphs have
//! `ps = O(1)` (small length bags — cliques).
//!
//! Computing `ps(G)` exactly is NP-hard (it generalises pathwidth), so this
//! crate provides:
//!
//! * decomposition **data types** and an axiomatic [`validate`]-or;
//! * **measures** (width/length/shape) for any decomposition;
//! * **constructions** with proven guarantees:
//!   [`tree_pd`] (heavy-path recursion, width ≤ log₂ n + 1 on any tree),
//!   [`interval_pd`] (clique path from an interval representation,
//!   length ≤ 1), [`construct`] (vertex-ordering and BFS-layer
//!   decompositions for arbitrary graphs);
//! * an **exact** vertex-separation DP for tiny graphs ([`exact`],
//!   `pw(G) = vs(G)`), used to certify the heuristics in tests;
//! * a best-of [`portfolio`] that tries everything applicable and returns
//!   the smallest-shape decomposition found — the default input to the
//!   Theorem-2 scheme.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod construct;
pub mod decomposition;
pub mod exact;
pub mod interval_pd;
pub mod measures;
pub mod ordering;
pub mod portfolio;
pub mod tree_pd;
pub mod validate;

pub use decomposition::{PathDecomposition, TreeDecomposition};
pub use portfolio::best_path_decomposition;
