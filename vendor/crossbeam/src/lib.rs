//! Offline, API-compatible subset of the
//! [`crossbeam`](https://crates.io/crates/crossbeam) crate, vendored so the
//! workspace builds without network access.
//!
//! Only [`thread::scope`] is provided — the one entry point the workspace
//! uses — implemented as a thin adapter over `std::thread::scope`, which has
//! offered the same structured-concurrency guarantees since Rust 1.63.
//! Semantic differences from upstream are confined to panic reporting: a
//! panic in an **unjoined** spawned thread propagates when the scope exits
//! (std behaviour) instead of surfacing as an `Err` from [`thread::scope`];
//! explicitly `join()`ed threads report panics identically via
//! `Result::Err`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod thread {
    //! Scoped threads, mirroring `crossbeam::thread`.

    /// Result of joining a thread: `Err` carries the panic payload.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handed to the [`scope`] closure; spawns borrowing threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. As in crossbeam, the closure
        /// receives the scope itself so threads can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Handle to a thread spawned in a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result
        /// (`Err` = the thread panicked).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Creates a scope in which threads borrowing from the environment can
    /// be spawned; all spawned threads are joined before `scope` returns.
    ///
    /// Upstream returns `Err` when any unjoined child panicked; this
    /// adapter inherits std semantics (the panic propagates on scope exit),
    /// so the returned `Result` is always `Ok`. Callers that `.expect()` it
    /// behave identically either way.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_spawns_and_joins() {
        let counter = AtomicUsize::new(0);
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let counter = &counter;
                    s.spawn(move |_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                        i * 10
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .sum::<usize>()
        })
        .expect("scope ok");
        assert_eq!(counter.load(Ordering::Relaxed), 4);
        assert_eq!(total, 60);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let hit = AtomicUsize::new(0);
        crate::thread::scope(|s| {
            s.spawn(|inner| {
                inner
                    .spawn(|_| hit.fetch_add(1, Ordering::Relaxed))
                    .join()
                    .unwrap();
            })
            .join()
            .unwrap();
        })
        .unwrap();
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn join_reports_panics() {
        let res = crate::thread::scope(|s| s.spawn(|_| panic!("boom")).join());
        assert!(res.expect("scope itself ok").is_err());
    }
}
