//! Length-prefixed binary traffic recording.
//!
//! The server appends each accepted request frame and the reply it
//! produced as one log entry, flushed before the next request is read —
//! so a `kill -9` can lose at most the entry being written, and the
//! durable prefix it leaves behind is exactly a replayable query stream
//! (every request frame carries its own `rng_base`, so answers are
//! order- and restart-independent). The log stores raw frame *bytes*:
//! this crate never parses them, keeping the dependency arrow pointing
//! from the wire layer down to the store and letting a future frame
//! version ride the same log format unchanged.

use crate::cursor::Cur;
use crate::StoreError;
use std::io::{self, Write};

/// First bytes of a traffic recording.
pub const RECORD_MAGIC: [u8; 4] = *b"NAVR";

/// Format version this module writes and reads.
const RECORD_VERSION: u16 = 1;

/// One recorded request/response exchange, as raw frame bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordedExchange {
    /// The accepted request frame, exactly as it arrived on the wire.
    pub request: Vec<u8>,
    /// The reply frame the server produced for it.
    pub response: Vec<u8>,
}

/// Appends recorded exchanges to any byte sink, one durable entry at a
/// time.
pub struct RecordWriter<W: Write> {
    sink: W,
    entries: u64,
}

impl<W: Write> RecordWriter<W> {
    /// Writes the log header and returns the writer.
    pub fn new(mut sink: W) -> io::Result<Self> {
        sink.write_all(&RECORD_MAGIC)?;
        sink.write_all(&RECORD_VERSION.to_le_bytes())?;
        sink.write_all(&0u16.to_le_bytes())?; // reserved
        sink.flush()?;
        Ok(RecordWriter { sink, entries: 0 })
    }

    /// Appends one exchange and flushes, so the entry is durable before
    /// the caller serves the next request.
    pub fn append(&mut self, request: &[u8], response: &[u8]) -> io::Result<()> {
        let req_len = u32::try_from(request.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "request frame too large"))?;
        let resp_len = u32::try_from(response.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "response frame too large"))?;
        self.sink.write_all(&req_len.to_le_bytes())?;
        self.sink.write_all(request)?;
        self.sink.write_all(&resp_len.to_le_bytes())?;
        self.sink.write_all(response)?;
        self.sink.flush()?;
        self.entries += 1;
        Ok(())
    }

    /// Entries appended through this writer.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Consumes the writer and hands back the sink — the way an
    /// in-memory recording is read back.
    pub fn into_inner(self) -> W {
        self.sink
    }
}

/// Reads the durable prefix of a traffic recording: every complete
/// entry, in order. A tail cut mid-entry — the normal shape of a log
/// whose writer was killed — is silently dropped; a log whose *header*
/// is damaged errors, because then nothing about the bytes is trusted.
pub fn read_record_log(bytes: &[u8]) -> Result<Vec<RecordedExchange>, StoreError> {
    let mut cur = Cur::new(bytes);
    if cur.take(4, "record magic")? != RECORD_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = cur.u16("record version")?;
    if version != RECORD_VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    cur.u16("record reserved")?;
    let mut out = Vec::new();
    // Each read that fails from here on is a truncated tail: keep the
    // prefix read so far.
    while let Ok(req_len) = cur.u32("") {
        let Ok(request) = cur.take(req_len as usize, "") else {
            break;
        };
        let Ok(resp_len) = cur.u32("") else { break };
        let Ok(response) = cur.take(resp_len as usize, "") else {
            break;
        };
        out.push(RecordedExchange {
            request: request.to_vec(),
            response: response.to_vec(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log(entries: &[(&[u8], &[u8])]) -> Vec<u8> {
        let mut w = RecordWriter::new(Vec::new()).unwrap();
        for (req, resp) in entries {
            w.append(req, resp).unwrap();
        }
        assert_eq!(w.entries(), entries.len() as u64);
        w.sink
    }

    #[test]
    fn roundtrip_preserves_every_exchange() {
        let log = sample_log(&[(b"req-one", b"resp-one"), (b"", b"r2"), (b"q3", b"")]);
        let got = read_record_log(&log).unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].request, b"req-one");
        assert_eq!(got[0].response, b"resp-one");
        assert_eq!(got[1].request, b"");
        assert_eq!(got[2].response, b"");
    }

    #[test]
    fn truncated_tail_keeps_the_durable_prefix() {
        let log = sample_log(&[(b"aaaa", b"bbbb"), (b"cccc", b"dddd")]);
        // Cut anywhere strictly inside the second entry: the first entry
        // must survive, whole-log errors must not appear.
        let second_entry_start = 8 + (4 + 4 + 4 + 4);
        for cut in second_entry_start..log.len() {
            let got = read_record_log(&log[..cut]).unwrap();
            assert_eq!(got.len(), 1, "cut at {cut}");
            assert_eq!(got[0].request, b"aaaa");
        }
    }

    #[test]
    fn empty_log_is_a_valid_recording() {
        let log = sample_log(&[]);
        assert_eq!(log.len(), 8);
        assert!(read_record_log(&log).unwrap().is_empty());
    }

    #[test]
    fn damaged_header_is_an_error_not_an_empty_log() {
        let log = sample_log(&[(b"x", b"y")]);
        let mut bad = log.clone();
        bad[0] ^= 0xff;
        assert_eq!(read_record_log(&bad), Err(StoreError::BadMagic));
        let mut newer = log.clone();
        newer[4] = 9;
        assert_eq!(
            read_record_log(&newer),
            Err(StoreError::UnsupportedVersion(9))
        );
        assert!(matches!(
            read_record_log(&log[..6]),
            Err(StoreError::Truncated(_))
        ));
    }

    #[test]
    fn forged_entry_length_reads_as_truncation_not_allocation() {
        let mut log = sample_log(&[(b"abcd", b"efgh")]);
        // Forge the first request length to a huge value: the reader must
        // treat it as a truncated tail (nothing durable follows), not
        // trust it.
        log[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_record_log(&log).unwrap().is_empty());
    }
}
