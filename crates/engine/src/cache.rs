//! The cross-batch distance-row cache and its admission policies.
//!
//! One distance row per routing target is the engine's whole marginal
//! cost: a row is `Θ(n)` bytes and `Θ(m)` BFS work to produce, while the
//! trials that consume it are comparatively cheap. Real query streams are
//! heavily skewed toward hot targets, so rows computed for one batch are
//! exactly what the next batch wants. [`RowCache`] keeps them, bounded by
//! a **byte** capacity rather than a row count so one knob survives graphs
//! of any size, under one of two [`AdmissionPolicy`] replacement schemes:
//!
//! * [`AdmissionPolicy::Lru`] — a strict LRU over [`DistRowBuf`] rows
//!   (compact `u16` storage whenever the graph's eccentricities fit,
//!   halving resident bytes);
//! * [`AdmissionPolicy::Segmented`] — a segmented LRU (SLRU) tuned for
//!   zipfian target skew: new rows enter a small **probation** tier and
//!   only a *re-referenced* row graduates to the **protected** tier, so a
//!   long scan of one-shot targets can no longer flush the hot head of the
//!   distribution the way it does under strict LRU.
//!
//! Rows are handed out as [`Arc`]s: eviction drops the cache's reference,
//! never a row a batch is still routing on. Distances are exact, so cache
//! state — including the policy choice — can never change an answer, only
//! its latency. `tests/engine.rs` property-tests that invariance.

use nav_graph::distance::DistRowBuf;
use nav_graph::NodeId;
use std::collections::HashMap;
use std::sync::Arc;

/// Sentinel for "no slot" in the intrusive recency lists.
const NIL: usize = usize::MAX;

/// Fraction of the byte capacity reserved for the protected tier under
/// [`AdmissionPolicy::Segmented`], as a percentage. The classic SLRU
/// split: most of the budget shields re-referenced rows, a thin probation
/// tier absorbs the one-shot tail.
const PROTECTED_PCT: usize = 80;

/// Replacement scheme of a [`RowCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Strict least-recently-used over one recency list.
    #[default]
    Lru,
    /// Segmented LRU: insertions land in a probation tier (20% of the
    /// byte budget); a hit promotes the row to the protected tier (80%),
    /// whose overflow demotes back to probation rather than evicting.
    /// Eviction always drains probation first, so scan traffic cannot
    /// displace the protected working set.
    Segmented,
}

impl AdmissionPolicy {
    /// Parses a CLI flag value (`lru` | `segmented`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "lru" => Some(AdmissionPolicy::Lru),
            "segmented" => Some(AdmissionPolicy::Segmented),
            _ => None,
        }
    }

    /// The CLI/JSON label of the policy.
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionPolicy::Lru => "lru",
            AdmissionPolicy::Segmented => "segmented",
        }
    }
}

/// Counter snapshot of a [`RowCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a resident row.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Rows inserted.
    pub insertions: u64,
    /// Rows evicted to make room.
    pub evictions: u64,
    /// Rows rejected at admission (larger than the whole capacity).
    pub rejected: u64,
    /// Rows currently resident.
    pub resident_rows: usize,
    /// Payload bytes currently resident.
    pub resident_bytes: usize,
    /// Configured capacity in bytes.
    pub capacity_bytes: usize,
    /// Rows currently in the protected tier (0 under strict LRU).
    pub protected_rows: usize,
    /// Payload bytes currently in the protected tier (0 under strict LRU).
    pub protected_bytes: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Which recency list a slot is threaded on. Strict LRU uses only
/// [`Tier::Probation`]; the names only carry meaning under SLRU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Tier {
    Probation,
    Protected,
}

struct Slot {
    key: NodeId,
    row: Arc<DistRowBuf>,
    bytes: usize,
    tier: Tier,
    /// The cache epoch the row was admitted under (see
    /// [`RowCache::set_epoch`]).
    epoch: u64,
    prev: usize,
    next: usize,
}

/// One intrusive doubly-linked recency list over the shared slot slab
/// (head = most recently used).
#[derive(Clone, Copy)]
struct RecencyList {
    head: usize,
    tail: usize,
}

impl RecencyList {
    const fn new() -> Self {
        RecencyList {
            head: NIL,
            tail: NIL,
        }
    }
}

/// A byte-bounded cache of target distance rows under a configurable
/// [`AdmissionPolicy`].
///
/// Implemented as a slot slab threaded with intrusive doubly-linked
/// recency lists (one per tier) plus a `HashMap` index — `O(1)`
/// get/insert/evict/promote, no per-operation scans, no unsafe.
pub struct RowCache {
    capacity_bytes: usize,
    policy: AdmissionPolicy,
    /// Protected-tier byte budget (0 under strict LRU).
    protected_cap: usize,
    index: HashMap<NodeId, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Current churn epoch; rows admitted under a different epoch are
    /// never served (see [`RowCache::set_epoch`]).
    epoch: u64,
    probation: RecencyList,
    protected: RecencyList,
    resident_bytes: usize,
    protected_bytes: usize,
    protected_rows: usize,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    rejected: u64,
}

impl RowCache {
    /// Creates a strict-LRU cache bounded at `capacity_bytes` of row
    /// payload. Capacity 0 is legal and means "never retain anything" —
    /// the engine degrades to per-batch recomputation but stays correct.
    pub fn new(capacity_bytes: usize) -> Self {
        Self::with_policy(capacity_bytes, AdmissionPolicy::Lru)
    }

    /// Creates a cache bounded at `capacity_bytes` under `policy`.
    pub fn with_policy(capacity_bytes: usize, policy: AdmissionPolicy) -> Self {
        let protected_cap = match policy {
            AdmissionPolicy::Lru => 0,
            // Multiply before dividing (widened so `usize::MAX`-scale
            // capacities cannot overflow): `capacity / 100 * PCT` truncates
            // first, giving a 0-byte protected tier below 100 bytes and a
            // sub-1% sizing error everywhere else.
            AdmissionPolicy::Segmented => {
                ((capacity_bytes as u128 * PROTECTED_PCT as u128) / 100) as usize
            }
        };
        RowCache {
            capacity_bytes,
            policy,
            protected_cap,
            index: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            epoch: 0,
            probation: RecencyList::new(),
            protected: RecencyList::new(),
            resident_bytes: 0,
            protected_bytes: 0,
            protected_rows: 0,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
            rejected: 0,
        }
    }

    /// The configured byte capacity.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// The configured replacement policy.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            insertions: self.insertions,
            evictions: self.evictions,
            rejected: self.rejected,
            resident_rows: self.index.len(),
            resident_bytes: self.resident_bytes,
            capacity_bytes: self.capacity_bytes,
            protected_rows: self.protected_rows,
            protected_bytes: self.protected_bytes,
        }
    }

    /// The cache's current churn epoch (0 until the first
    /// [`RowCache::set_epoch`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advances the cache to churn `epoch`. Rows admitted under any other
    /// epoch are dropped immediately (counted as evictions), so a churn
    /// tick can never serve state carried over from before the tick — the
    /// serving layer's stale-row invalidation contract. Distance rows are
    /// exact either way; the invalidation enforces the *epoch isolation*
    /// the fault-injection layer is property-tested against, at the cost
    /// of re-warming after a flip. Returns `true` when the epoch actually
    /// changed (the caller's flip counter).
    pub fn set_epoch(&mut self, epoch: u64) -> bool {
        if epoch == self.epoch {
            return false;
        }
        self.epoch = epoch;
        let keys: Vec<NodeId> = self.index.keys().copied().collect();
        for key in keys {
            let slot = self.index[&key];
            self.detach(slot);
            self.index.remove(&key);
            self.free.push(slot);
            self.evictions += 1;
        }
        true
    }

    /// Exports every resident row in **re-insertion order**: probation
    /// then protected, each tier coldest (LRU) first, so replaying the
    /// rows through [`RowCache::import_row`] (which pushes to the front)
    /// reproduces both tiers' recency order exactly. The `bool` is
    /// "protected". Rows stay resident — this is a read-only walk, the
    /// snapshot layer's view of cache warmth.
    pub fn export_rows(&self) -> Vec<(NodeId, Arc<DistRowBuf>, bool)> {
        let mut out = Vec::with_capacity(self.index.len());
        for (list, protected) in [(&self.probation, false), (&self.protected, true)] {
            let mut slot = list.tail;
            while slot != NIL {
                let s = &self.slots[slot];
                out.push((s.key, Arc::clone(&s.row), protected));
                slot = s.prev;
            }
        }
        out
    }

    /// Re-admits one exported row at the current epoch, as the most
    /// recent entry of its tier (`protected` is ignored under strict
    /// LRU, where only one list exists). Same admission discipline as
    /// [`RowCache::insert`]: an over-capacity row is rejected (counted),
    /// and the cache evicts/demotes as needed so the byte bounds hold
    /// even against a snapshot taken under a larger capacity.
    pub fn import_row(&mut self, t: NodeId, row: Arc<DistRowBuf>, protected: bool) {
        let bytes = row.bytes();
        if bytes > self.capacity_bytes {
            self.rejected += 1;
            return;
        }
        if let Some(slot) = self.index.get(&t).copied() {
            self.detach(slot);
            self.index.remove(&t);
            self.free.push(slot);
        }
        let tier = if protected && self.policy == AdmissionPolicy::Segmented {
            Tier::Protected
        } else {
            Tier::Probation
        };
        while self.resident_bytes + bytes > self.capacity_bytes {
            self.evict_one();
        }
        let slot = self.alloc_slot(t, row, bytes, tier);
        self.index.insert(t, slot);
        self.resident_bytes += bytes;
        if tier == Tier::Protected {
            self.protected_bytes += bytes;
            self.protected_rows += 1;
        }
        self.push_front(slot);
        self.insertions += 1;
        self.rebalance_protected();
    }

    /// Looks up the row of target `t`. A hit promotes the row: to the
    /// front of the single list under strict LRU, into the protected tier
    /// under SLRU. A resident row whose admission epoch differs from the
    /// cache's current epoch is defensively dropped and reported as a
    /// miss — [`RowCache::set_epoch`] already purges eagerly, so this is
    /// a second, independent line of defence against stale rows.
    pub fn get(&mut self, t: NodeId) -> Option<Arc<DistRowBuf>> {
        match self.index.get(&t).copied() {
            Some(slot) if self.slots[slot].epoch == self.epoch => {
                self.hits += 1;
                self.touch(slot);
                Some(Arc::clone(&self.slots[slot].row))
            }
            Some(slot) => {
                self.detach(slot);
                self.index.remove(&t);
                self.free.push(slot);
                self.evictions += 1;
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts the row of target `t`, evicting rows until it fits. A row
    /// bigger than the whole capacity is rejected (counted, not stored) —
    /// admission control, so one oversized row cannot flush the entire
    /// working set. Re-inserting a resident key replaces its row in place
    /// (keeping its tier).
    pub fn insert(&mut self, t: NodeId, row: Arc<DistRowBuf>) {
        let bytes = row.bytes();
        if bytes > self.capacity_bytes {
            self.rejected += 1;
            return;
        }
        // Uniform path for both fresh inserts and replacements: detach the
        // old slot (if any) first, so the eviction loop below can never
        // land on the row being (re)inserted.
        let tier = match self.index.get(&t).copied() {
            Some(slot) => {
                let tier = self.slots[slot].tier;
                self.detach(slot);
                self.index.remove(&t);
                self.free.push(slot);
                tier
            }
            None => Tier::Probation,
        };
        while self.resident_bytes + bytes > self.capacity_bytes {
            self.evict_one();
        }
        let slot = self.alloc_slot(t, row, bytes, tier);
        self.index.insert(t, slot);
        self.resident_bytes += bytes;
        if tier == Tier::Protected {
            self.protected_bytes += bytes;
            self.protected_rows += 1;
        }
        self.push_front(slot);
        self.insertions += 1;
        // A replacement that grew inside the protected tier can push that
        // tier over its budget; demote from its cold end.
        self.rebalance_protected();
    }

    /// Promotes a hit slot per the policy.
    fn touch(&mut self, slot: usize) {
        match self.policy {
            AdmissionPolicy::Lru => {
                self.unlink(slot);
                self.push_front(slot);
            }
            AdmissionPolicy::Segmented => {
                self.unlink(slot);
                if self.slots[slot].tier == Tier::Probation {
                    self.slots[slot].tier = Tier::Protected;
                    self.protected_bytes += self.slots[slot].bytes;
                    self.protected_rows += 1;
                }
                self.push_front(slot);
                self.rebalance_protected();
            }
        }
    }

    /// Demotes protected-tail slots to probation until the protected tier
    /// fits its byte budget. Demotion keeps rows resident — only
    /// [`Self::evict_one`] drops them — so the total byte bound is
    /// unaffected.
    fn rebalance_protected(&mut self) {
        while self.protected_bytes > self.protected_cap {
            let slot = self.protected.tail;
            debug_assert_ne!(slot, NIL, "protected bytes without protected rows");
            self.unlink(slot);
            self.slots[slot].tier = Tier::Probation;
            self.protected_bytes -= self.slots[slot].bytes;
            self.protected_rows -= 1;
            self.push_front(slot);
        }
    }

    /// Evicts one row: the probation tail when the tier is non-empty (the
    /// strict-LRU tail lives there too), otherwise the protected tail.
    fn evict_one(&mut self) {
        let slot = if self.probation.tail != NIL {
            self.probation.tail
        } else {
            self.protected.tail
        };
        debug_assert_ne!(slot, NIL, "evict called on an empty cache");
        self.detach(slot);
        let key = self.slots[slot].key;
        self.index.remove(&key);
        self.free.push(slot);
        self.evictions += 1;
    }

    /// Unlinks `slot` and releases its byte accounting (resident and, if
    /// protected, tier bytes) plus its row Arc — in-flight borrowers keep
    /// the row alive.
    fn detach(&mut self, slot: usize) {
        self.unlink(slot);
        self.resident_bytes -= self.slots[slot].bytes;
        if self.slots[slot].tier == Tier::Protected {
            self.protected_bytes -= self.slots[slot].bytes;
            self.protected_rows -= 1;
        }
        self.slots[slot].row = Arc::new(DistRowBuf::Wide(Vec::new()));
    }

    fn alloc_slot(&mut self, key: NodeId, row: Arc<DistRowBuf>, bytes: usize, tier: Tier) -> usize {
        let slot = Slot {
            key,
            row,
            bytes,
            tier,
            epoch: self.epoch,
            prev: NIL,
            next: NIL,
        };
        match self.free.pop() {
            Some(i) => {
                self.slots[i] = slot;
                i
            }
            None => {
                self.slots.push(slot);
                self.slots.len() - 1
            }
        }
    }

    fn list_of(&mut self, tier: Tier) -> &mut RecencyList {
        match tier {
            Tier::Probation => &mut self.probation,
            Tier::Protected => &mut self.protected,
        }
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next, tier) = {
            let s = &self.slots[slot];
            (s.prev, s.next, s.tier)
        };
        let list = self.list_of(tier);
        if prev == NIL {
            if list.head == slot {
                list.head = next;
            }
        } else {
            self.slots[prev].next = next;
        }
        let list = self.list_of(tier);
        if next == NIL {
            if list.tail == slot {
                list.tail = prev;
            }
        } else {
            self.slots[next].prev = prev;
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    fn push_front(&mut self, slot: usize) {
        let tier = self.slots[slot].tier;
        let head = self.list_of(tier).head;
        self.slots[slot].prev = NIL;
        self.slots[slot].next = head;
        if head != NIL {
            self.slots[head].prev = slot;
        }
        let list = self.list_of(tier);
        list.head = slot;
        if list.tail == NIL {
            list.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(len: usize, narrow: bool) -> Arc<DistRowBuf> {
        Arc::new(if narrow {
            DistRowBuf::Narrow(vec![1u16; len])
        } else {
            DistRowBuf::Wide(vec![1u32; len])
        })
    }

    #[test]
    fn hit_miss_and_promotion() {
        let mut c = RowCache::new(1000);
        assert!(c.get(1).is_none());
        c.insert(1, row(10, true)); // 20 bytes
        c.insert(2, row(10, true));
        assert!(c.get(1).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 2));
        assert_eq!(s.resident_rows, 2);
        assert_eq!(s.resident_bytes, 40);
        assert_eq!((s.protected_rows, s.protected_bytes), (0, 0));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(c.policy(), AdmissionPolicy::Lru);
    }

    #[test]
    fn lru_eviction_order_respects_recency() {
        // Three 20-byte rows in a 40-byte cache: inserting the third
        // evicts the least recently *used*, not the oldest inserted.
        let mut c = RowCache::new(40);
        c.insert(1, row(10, true));
        c.insert(2, row(10, true));
        assert!(c.get(1).is_some()); // 1 is now MRU
        c.insert(3, row(10, true)); // evicts 2
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn capacity_zero_rejects_everything() {
        let mut c = RowCache::new(0);
        c.insert(7, row(1, true));
        assert!(c.get(7).is_none());
        let s = c.stats();
        assert_eq!(s.rejected, 1);
        assert_eq!(s.resident_rows, 0);
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn oversized_row_rejected_without_flushing() {
        let mut c = RowCache::new(100);
        c.insert(1, row(10, true)); // 20 bytes, fits
        c.insert(2, row(200, true)); // 400 bytes > capacity: rejected
        assert!(c.get(1).is_some(), "resident row must survive rejection");
        assert!(c.get(2).is_none());
        assert_eq!(c.stats().rejected, 1);
    }

    #[test]
    fn reinsert_replaces_and_adjusts_bytes() {
        let mut c = RowCache::new(1000);
        c.insert(1, row(10, true)); // 20 bytes
        c.insert(1, row(10, false)); // 40 bytes, same key
        let s = c.stats();
        assert_eq!(s.resident_rows, 1);
        assert_eq!(s.resident_bytes, 40);
        assert_eq!(s.insertions, 2);
        assert!(!c.get(1).unwrap().is_narrow());
    }

    #[test]
    fn growing_replacement_evicts_to_stay_within_capacity() {
        // 100-byte budget: two 20-byte rows, then key 1 grows to 90 bytes
        // — key 2 must go, and the byte bound must hold.
        let mut c = RowCache::new(100);
        c.insert(1, row(10, true)); // 20 B
        c.insert(2, row(10, true)); // 20 B
        c.insert(1, row(45, true)); // 90 B, same key
        let s = c.stats();
        assert!(s.resident_bytes <= s.capacity_bytes, "{s:?}");
        assert_eq!(s.resident_bytes, 90);
        assert_eq!(s.evictions, 1);
        assert!(c.get(2).is_none());
        assert_eq!(c.get(1).unwrap().len(), 45);
    }

    #[test]
    fn eviction_keeps_borrowed_rows_alive() {
        let mut c = RowCache::new(20);
        c.insert(1, row(10, true));
        let borrowed = c.get(1).unwrap();
        c.insert(2, row(10, true)); // evicts 1
        assert!(c.get(1).is_none());
        assert_eq!(borrowed.len(), 10, "borrower unaffected by eviction");
    }

    #[test]
    fn slot_reuse_after_eviction() {
        let mut c = RowCache::new(20);
        for t in 0..100u32 {
            c.insert(t, row(10, true));
        }
        assert_eq!(c.stats().evictions, 99);
        assert_eq!(c.stats().resident_rows, 1);
        assert!(c.slots.len() <= 2, "slab must recycle slots");
        assert!(c.get(99).is_some());
    }

    #[test]
    fn narrow_rows_charge_half() {
        let mut c = RowCache::new(10_000);
        c.insert(1, row(100, true));
        c.insert(2, row(100, false));
        assert_eq!(c.stats().resident_bytes, 200 + 400);
        assert_eq!(c.capacity_bytes(), 10_000);
    }

    #[test]
    fn policy_parse_and_label_roundtrip() {
        for p in [AdmissionPolicy::Lru, AdmissionPolicy::Segmented] {
            assert_eq!(AdmissionPolicy::parse(p.label()), Some(p));
        }
        assert_eq!(AdmissionPolicy::parse("arc"), None);
    }

    #[test]
    fn segmented_hit_promotes_to_protected() {
        let mut c = RowCache::with_policy(1000, AdmissionPolicy::Segmented);
        c.insert(1, row(10, true)); // probation
        assert_eq!(c.stats().protected_rows, 0);
        assert!(c.get(1).is_some()); // promoted
        let s = c.stats();
        assert_eq!((s.protected_rows, s.protected_bytes), (1, 20));
        assert_eq!(s.resident_rows, 1);
        assert_eq!(c.policy(), AdmissionPolicy::Segmented);
    }

    #[test]
    fn segmented_scan_does_not_flush_protected_rows() {
        // A 100-byte SLRU (80 protected / 20 probation) holding two hot
        // 20-byte protected rows survives a scan of 50 one-shot targets;
        // under strict LRU the same scan flushes both.
        let hot = [1u32, 2];
        let scan = 100u32..150;
        let mut slru = RowCache::with_policy(100, AdmissionPolicy::Segmented);
        let mut lru = RowCache::with_policy(100, AdmissionPolicy::Lru);
        for c in [&mut slru, &mut lru] {
            for &t in &hot {
                c.insert(t, row(10, true));
                assert!(c.get(t).is_some()); // promote under SLRU
            }
            for t in scan.clone() {
                c.insert(t, row(10, true));
            }
        }
        for &t in &hot {
            assert!(slru.get(t).is_some(), "SLRU must keep hot row {t}");
            assert!(lru.get(t).is_none(), "strict LRU flushes hot row {t}");
        }
        assert!(slru.stats().resident_bytes <= 100);
    }

    #[test]
    fn segmented_protected_overflow_demotes_not_evicts() {
        // Protected budget is 80 of 100 bytes: promoting five 20-byte
        // rows overflows it; the cold protected tail must fall back to
        // probation (still resident), not be dropped.
        let mut c = RowCache::with_policy(100, AdmissionPolicy::Segmented);
        for t in 1..=5u32 {
            c.insert(t, row(10, true));
            assert!(c.get(t).is_some());
        }
        let s = c.stats();
        assert_eq!(s.resident_rows, 5, "demotion keeps rows resident");
        assert_eq!(s.evictions, 0);
        assert!(s.protected_bytes <= 80, "{s:?}");
        assert_eq!(s.protected_rows, 4); // one demoted back
        assert!(c.get(1).is_some(), "demoted row is still served");
    }

    #[test]
    fn segmented_replacement_keeps_tier_and_byte_bound() {
        let mut c = RowCache::with_policy(100, AdmissionPolicy::Segmented);
        c.insert(1, row(10, true)); // probation, 20 B
        assert!(c.get(1).is_some()); // protected
        c.insert(1, row(20, true)); // replacement grows to 40 B, stays protected
        let s = c.stats();
        assert_eq!(s.resident_rows, 1);
        assert_eq!(s.resident_bytes, 40);
        assert_eq!((s.protected_rows, s.protected_bytes), (1, 40));
        assert!(s.resident_bytes <= s.capacity_bytes);
    }

    #[test]
    fn segmented_eviction_drains_probation_before_protected() {
        // 100-byte budget: one promoted 20-byte row + probation fill.
        let mut c = RowCache::with_policy(100, AdmissionPolicy::Segmented);
        c.insert(1, row(10, true));
        assert!(c.get(1).is_some()); // protected
        for t in 10..14u32 {
            c.insert(t, row(10, true)); // probation now 80 B -> over budget
        }
        assert!(c.stats().resident_bytes <= 100);
        assert!(c.get(1).is_some(), "protected row outlives probation churn");
    }

    #[test]
    fn epoch_flip_purges_every_resident_row() {
        let mut c = RowCache::new(1000);
        for t in 0..5u32 {
            c.insert(t, row(10, true));
        }
        assert_eq!(c.stats().resident_rows, 5);
        assert_eq!(c.epoch(), 0);
        assert!(c.set_epoch(3), "flip must report a change");
        assert!(!c.set_epoch(3), "same epoch is a no-op");
        let s = c.stats();
        assert_eq!(s.resident_rows, 0, "churn tick cannot serve stale rows");
        assert_eq!(s.resident_bytes, 0);
        assert_eq!(s.evictions, 5);
        assert!(c.get(0).is_none());
        // Rows admitted after the flip serve normally.
        c.insert(0, row(10, true));
        assert!(c.get(0).is_some());
        assert_eq!(c.epoch(), 3);
    }

    #[test]
    fn stale_epoch_row_is_never_served_even_if_resident() {
        // The defensive path in `get`: `set_epoch` purges eagerly, so a
        // stale-tagged resident row can only be hand-forged — which is
        // exactly the point of a second line of defence.
        let mut c = RowCache::with_policy(1000, AdmissionPolicy::Segmented);
        c.insert(2, row(10, true));
        let slot = c.index[&2];
        c.slots[slot].epoch = 999; // forge a row from another epoch
        assert!(c.get(2).is_none(), "stale row must not serve");
        let s = c.stats();
        assert_eq!(s.resident_rows, 0, "stale row is dropped on lookup");
        assert_eq!(s.resident_bytes, 0);
        assert_eq!((s.hits, s.misses, s.evictions), (0, 1, 1));
    }

    #[test]
    fn segmented_epoch_purge_clears_protected_tier_too() {
        let mut c = RowCache::with_policy(1000, AdmissionPolicy::Segmented);
        c.insert(1, row(10, true));
        assert!(c.get(1).is_some()); // promoted to protected
        assert_eq!(c.stats().protected_rows, 1);
        c.set_epoch(7);
        let s = c.stats();
        assert_eq!((s.protected_rows, s.protected_bytes), (0, 0));
        assert_eq!(s.resident_rows, 0);
    }

    #[test]
    fn segmented_tiny_capacity_still_bounded() {
        // Capacity smaller than one protected budget row: promotion
        // demotes the row right back; the byte bound always holds.
        let mut c = RowCache::with_policy(24, AdmissionPolicy::Segmented);
        c.insert(1, row(10, true)); // 20 B in probation
        assert!(c.get(1).is_some()); // promote: 20 > floor(24*0.8)=19 -> demoted back
        let s = c.stats();
        assert_eq!(s.resident_rows, 1);
        assert_eq!(s.protected_rows, 0);
        assert!(c.get(1).is_some(), "row survives the demotion round-trip");
        assert!(c.stats().resident_bytes <= 24);
    }

    #[test]
    fn protected_cap_is_multiply_before_divide() {
        // `capacity / 100 * PCT` truncated the quotient first: every
        // capacity under 100 bytes got a 0-byte protected tier. The
        // fixed computation is floor(capacity * 80 / 100) at every
        // scale, including capacities where the product overflows usize.
        for (capacity, expected) in [
            (1usize, 0usize),
            (99, 79),
            (100, 80),
            (
                usize::MAX / 2,
                usize::MAX / 2 / 100 * 80 + (usize::MAX / 2 % 100) * 80 / 100,
            ),
        ] {
            let c = RowCache::with_policy(capacity, AdmissionPolicy::Segmented);
            assert_eq!(
                c.protected_cap, expected,
                "protected cap at capacity {capacity}"
            );
            let lru = RowCache::with_policy(capacity, AdmissionPolicy::Lru);
            assert_eq!(lru.protected_cap, 0, "LRU has no protected tier");
        }
        // The regression the truncation caused: a sub-100-byte SLRU can
        // now actually protect a row that fits its 80% share.
        let mut c = RowCache::with_policy(30, AdmissionPolicy::Segmented);
        c.insert(1, row(10, true)); // 20 B <= floor(30*0.8)=24
        assert!(c.get(1).is_some());
        assert_eq!(c.stats().protected_rows, 1, "small caches protect too");
    }

    #[test]
    fn export_import_reproduces_rows_tiers_and_recency() {
        let mut c = RowCache::with_policy(200, AdmissionPolicy::Segmented);
        for t in 1..=4u32 {
            c.insert(t, row(10, true)); // 20 B each, probation
        }
        assert!(c.get(2).is_some()); // promote 2
        assert!(c.get(3).is_some()); // promote 3 (3 is protected-MRU)
        let exported = c.export_rows();
        assert_eq!(exported.len(), 4);

        let mut r = RowCache::with_policy(200, AdmissionPolicy::Segmented);
        r.set_epoch(5);
        for (t, row, protected) in &exported {
            r.import_row(*t, Arc::clone(row), *protected);
        }
        let (a, b) = (c.stats(), r.stats());
        assert_eq!(a.resident_rows, b.resident_rows);
        assert_eq!(a.resident_bytes, b.resident_bytes);
        assert_eq!(
            (a.protected_rows, a.protected_bytes),
            (b.protected_rows, b.protected_bytes)
        );
        // Same eviction order from here on: fill probation until the
        // original probation rows (1, then 4 — 1 is colder) evict first.
        for cache in [&mut c, &mut r] {
            cache.insert(50, row(10, true));
            cache.insert(51, row(10, true));
            cache.insert(52, row(10, true));
            cache.insert(53, row(10, true));
            cache.insert(54, row(10, true)); // 9 rows x 20 B > 200 B: evict coldest probation
        }
        for t in [2u32, 3] {
            assert!(c.get(t).is_some());
            assert!(
                r.get(t).is_some(),
                "protected row {t} must survive in the restored cache"
            );
        }
        assert_eq!(
            c.get(1).is_some(),
            r.get(1).is_some(),
            "same eviction victim"
        );
        // Imports are rejected against the *importing* cache's capacity.
        let mut tiny = RowCache::new(10);
        tiny.import_row(9, row(10, true), false); // 20 B > 10 B
        assert_eq!(tiny.stats().rejected, 1);
        assert_eq!(tiny.stats().resident_rows, 0);
    }
}
