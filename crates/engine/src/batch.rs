//! The request/response types of the serving API.

use nav_core::trial::PairStats;
use nav_graph::NodeId;

/// One routing query: estimate greedy-routing behaviour from `s` to `t`
/// over `trials` independent long-range draws.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Query {
    /// Source node.
    pub s: NodeId,
    /// Target node.
    pub t: NodeId,
    /// Independent routing trials to aggregate for this query.
    pub trials: usize,
}

/// A batch of queries served in one engine round-trip. Batching is the
/// engine's unit of work: targets are deduplicated and cold rows computed
/// 64 per MS-BFS pass *within* a batch, so bigger batches amortise better
/// — but answers never depend on how a stream was split into batches.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryBatch {
    /// The queries, in arrival order. Answers come back in the same order.
    pub queries: Vec<Query>,
}

impl QueryBatch {
    /// A batch over explicit `(s, t)` pairs, all at the same trial count.
    pub fn from_pairs(pairs: &[(NodeId, NodeId)], trials: usize) -> Self {
        QueryBatch {
            queries: pairs.iter().map(|&(s, t)| Query { s, t, trials }).collect(),
        }
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` when the batch holds no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The `(s, t)` pairs of the batch, in order — the exact slice a
    /// reference [`nav_core::trial::run_trials`] over this batch takes.
    pub fn pairs(&self) -> Vec<(NodeId, NodeId)> {
        self.queries.iter().map(|q| (q.s, q.t)).collect()
    }
}

/// The engine's answer to one batch.
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// Per-query statistics, in query order — field-for-field what
    /// [`nav_core::trial::run_trials`] would report for the same pairs.
    pub answers: Vec<PairStats>,
    /// Distinct targets served from the cross-batch row cache.
    pub warm_targets: usize,
    /// Distinct targets whose rows were computed this batch.
    pub cold_targets: usize,
    /// Wall-clock service time of the batch, milliseconds.
    pub elapsed_ms: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_roundtrip() {
        let pairs = [(0u32, 3u32), (2, 1)];
        let b = QueryBatch::from_pairs(&pairs, 5);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert!(QueryBatch::default().is_empty());
        assert_eq!(
            b.queries[1],
            Query {
                s: 2,
                t: 1,
                trials: 5
            }
        );
        assert_eq!(b.pairs(), pairs.to_vec());
    }
}
