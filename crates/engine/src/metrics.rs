//! Lifetime service metrics of an [`crate::Engine`].

use nav_analysis::latency::LatencySummary;
use nav_core::sampler::SamplerStats;
use nav_obs::LogHistogram;

/// Counters and a bounded latency histogram accumulated across every
/// batch an engine has served. Memory is O(1) in queries served: the
/// per-batch samples land in a fixed-size [`LogHistogram`] instead of a
/// growing vector, and two metrics merge ([`EngineMetrics::merge`]) so a
/// sharded front can present one lifetime view.
#[derive(Clone, Debug, Default)]
pub struct EngineMetrics {
    /// Queries answered.
    pub queries: u64,
    /// Batches served.
    pub batches: u64,
    /// Routing trials executed.
    pub trials: u64,
    /// Distinct targets served warm (row already resident).
    pub warm_targets: u64,
    /// Distinct targets computed cold (MS-BFS this batch).
    pub cold_targets: u64,
    /// Total service wall-clock, milliseconds.
    pub total_ms: f64,
    /// Per-step sampler counters summed over every query's worker (all
    /// zero under the scalar backend). `row_bytes` is the total transient
    /// ball-row payload the workers allocated — each individual worker
    /// stayed under the engine's byte budget.
    pub sampler: SamplerStats,
    /// Long-range contacts suppressed by fault injection: the i.i.d.
    /// drop coin plus contacts whose node was down in the query's churn
    /// epoch. 0 when [`crate::EngineConfig::fault`] is off.
    pub dropped_links: u64,
    /// Hops where the fault-free greedy winner was down and routing fell
    /// back to a different live hop.
    pub rerouted_hops: u64,
    /// Churn-epoch changes observed by the row cache (each one purges the
    /// resident rows — stale-row invalidation).
    pub epoch_flips: u64,
    /// Per-batch wall-clock samples, milliseconds, log-bucketed.
    batch_ms: LogHistogram,
    /// Exact per-batch samples, kept only under `cfg(test)` so the
    /// conformance test can compare the histogram digest against the
    /// exact one. Production builds carry no unbounded state.
    #[cfg(test)]
    batch_ms_exact: Vec<f64>,
}

impl EngineMetrics {
    /// Records one served batch.
    pub fn record_batch(
        &mut self,
        queries: usize,
        trials: u64,
        warm: usize,
        cold: usize,
        elapsed_ms: f64,
    ) {
        self.queries += queries as u64;
        self.batches += 1;
        self.trials += trials;
        self.warm_targets += warm as u64;
        self.cold_targets += cold as u64;
        self.total_ms += elapsed_ms;
        self.batch_ms.record(elapsed_ms);
        #[cfg(test)]
        self.batch_ms_exact.push(elapsed_ms);
    }

    /// Folds one batch's summed sampler counters into the lifetime
    /// totals.
    pub fn record_sampler(&mut self, stats: &SamplerStats) {
        self.sampler.merge(stats);
    }

    /// Folds one batch's fault tallies into the lifetime totals.
    pub fn record_fault(&mut self, dropped_links: u64, rerouted_hops: u64, epoch_flips: u64) {
        self.dropped_links += dropped_links;
        self.rerouted_hops += rerouted_hops;
        self.epoch_flips += epoch_flips;
    }

    /// Adds `other`'s counters and latency histogram into `self` — how a
    /// sharded front folds per-shard metrics into one view.
    pub fn merge(&mut self, other: &EngineMetrics) {
        self.queries += other.queries;
        self.batches += other.batches;
        self.trials += other.trials;
        self.warm_targets += other.warm_targets;
        self.cold_targets += other.cold_targets;
        self.total_ms += other.total_ms;
        self.sampler.merge(&other.sampler);
        self.dropped_links += other.dropped_links;
        self.rerouted_hops += other.rerouted_hops;
        self.epoch_flips += other.epoch_flips;
        self.batch_ms.merge(&other.batch_ms);
        #[cfg(test)]
        self.batch_ms_exact.extend_from_slice(&other.batch_ms_exact);
    }

    /// The per-batch latency histogram (milliseconds).
    pub fn batch_hist(&self) -> &LogHistogram {
        &self.batch_ms
    }

    /// Tail-latency digest of the per-batch service times (`None` before
    /// the first batch). `count`/`mean`/`min`/`max` are exact; the
    /// quantiles come from the histogram and carry its declared relative
    /// error ([`LogHistogram::error_factor`]).
    pub fn latency(&self) -> Option<LatencySummary> {
        self.batch_ms.summary()
    }

    /// Overall throughput in queries per second (0 before any work).
    pub fn throughput_qps(&self) -> f64 {
        if self.total_ms <= 0.0 {
            0.0
        } else {
            self.queries as f64 / (self.total_ms / 1e3)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_digests() {
        let mut m = EngineMetrics::default();
        assert!(m.latency().is_none());
        assert_eq!(m.throughput_qps(), 0.0);
        m.record_batch(100, 400, 3, 7, 50.0);
        m.record_batch(100, 400, 10, 0, 150.0);
        m.record_fault(5, 2, 1);
        m.record_fault(3, 1, 0);
        assert_eq!(m.dropped_links, 8);
        assert_eq!(m.rerouted_hops, 3);
        assert_eq!(m.epoch_flips, 1);
        assert_eq!(m.queries, 200);
        assert_eq!(m.batches, 2);
        assert_eq!(m.trials, 800);
        assert_eq!(m.warm_targets, 13);
        assert_eq!(m.cold_targets, 7);
        assert_eq!(m.batch_hist().count(), 2);
        let lat = m.latency().unwrap();
        assert_eq!(lat.count, 2);
        assert_eq!(lat.min, 50.0);
        assert_eq!(lat.max, 150.0);
        // 200 queries in 0.2 s → 1000 qps.
        assert!((m.throughput_qps() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_digest_conforms_to_exact_samples() {
        // The conformance check the ISSUE asks for: the histogram-backed
        // digest must track the exact-sample digest within the declared
        // relative-error factor on a realistic latency spread.
        let mut m = EngineMetrics::default();
        for i in 0..500u64 {
            // 0.05..≈60 ms, log-spread like a cold/warm mixture.
            let ms = 0.05 * 1.0143f64.powi(i as i32 % 500);
            m.record_batch(10, 40, 1, 1, ms);
        }
        let exact = LatencySummary::from_samples(&m.batch_ms_exact).unwrap();
        let approx = m.latency().unwrap();
        assert_eq!(approx.count, exact.count);
        assert!((approx.mean - exact.mean).abs() < 1e-9);
        assert_eq!(approx.min, exact.min);
        assert_eq!(approx.max, exact.max);
        let gamma = LogHistogram::error_factor() * 1.0001;
        for (a, e) in [
            (approx.p50, exact.p50),
            (approx.p90, exact.p90),
            (approx.p99, exact.p99),
        ] {
            assert!(a >= e / gamma && a <= e * gamma, "approx {a} vs exact {e}");
        }
    }

    #[test]
    fn merge_combines_counters_and_histograms() {
        let mut a = EngineMetrics::default();
        let mut b = EngineMetrics::default();
        a.record_batch(10, 20, 1, 2, 5.0);
        b.record_batch(30, 40, 3, 4, 15.0);
        b.record_fault(1, 2, 3);
        a.merge(&b);
        assert_eq!(a.queries, 40);
        assert_eq!(a.batches, 2);
        assert_eq!(a.trials, 60);
        assert_eq!(a.warm_targets, 4);
        assert_eq!(a.cold_targets, 6);
        assert_eq!(a.dropped_links, 1);
        assert_eq!(a.epoch_flips, 3);
        assert_eq!(a.batch_hist().count(), 2);
        let lat = a.latency().unwrap();
        assert_eq!(lat.min, 5.0);
        assert_eq!(lat.max, 15.0);
    }
}
