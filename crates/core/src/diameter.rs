//! Greedy-diameter estimation.
//!
//! `diam(G, φ) = max_{s,t} E(φ, s, t)`. Exact maximisation needs all n²
//! pairs; the estimator combines the pairs that drive every lower-bound
//! construction in the paper (extremal/diametral pairs) with a random
//! sample, and reports the max of per-pair mean steps.

use crate::scheme::AugmentationScheme;
use crate::trial::{extremal_pairs, random_pairs, run_trials, TrialConfig, TrialResult};
use nav_graph::{Graph, GraphError};

/// Configuration for greedy-diameter estimation.
#[derive(Clone, Debug)]
pub struct DiameterConfig {
    /// Monte-Carlo trial settings.
    pub trial: TrialConfig,
    /// Number of random pairs added to the extremal ones.
    pub random_pairs: usize,
}

impl Default for DiameterConfig {
    fn default() -> Self {
        DiameterConfig {
            trial: TrialConfig::default(),
            random_pairs: 14,
        }
    }
}

/// A greedy-diameter estimate with its supporting evidence.
#[derive(Clone, Debug)]
pub struct DiameterEstimate {
    /// `max` of per-pair mean steps — the estimate of `diam(G, φ)`.
    pub greedy_diameter: f64,
    /// The pair realising it.
    pub witness: (nav_graph::NodeId, nav_graph::NodeId),
    /// The full per-pair data.
    pub trials: TrialResult,
}

/// Estimates the greedy diameter of `(g, scheme)`.
pub fn estimate_greedy_diameter<S: AugmentationScheme + ?Sized>(
    g: &Graph,
    scheme: &S,
    cfg: &DiameterConfig,
) -> Result<DiameterEstimate, GraphError> {
    let mut pairs = extremal_pairs(g);
    if g.num_nodes() >= 2 && cfg.random_pairs > 0 {
        let mut rng = nav_par::rng::seeded_rng(cfg.trial.seed ^ 0xD1A3);
        pairs.extend(random_pairs(g, cfg.random_pairs, &mut rng));
    }
    let trials = run_trials(g, scheme, &pairs, &cfg.trial)?;
    let (best_idx, _) = trials
        .pairs
        .iter()
        .enumerate()
        .max_by(|a, b| {
            a.1.mean_steps
                .partial_cmp(&b.1.mean_steps)
                .expect("finite means")
        })
        .expect("at least the extremal pairs");
    let witness = (trials.pairs[best_idx].s, trials.pairs[best_idx].t);
    Ok(DiameterEstimate {
        greedy_diameter: trials.pairs[best_idx].mean_steps,
        witness,
        trials,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::{NoAugmentation, UniformScheme};
    use nav_graph::GraphBuilder;

    fn path(n: usize) -> Graph {
        GraphBuilder::from_edges(n, (0..n as u32 - 1).map(|u| (u, u + 1))).unwrap()
    }

    fn quick_cfg() -> DiameterConfig {
        DiameterConfig {
            trial: TrialConfig {
                trials_per_pair: 8,
                seed: 5,
                threads: 2,
                ..TrialConfig::default()
            },
            random_pairs: 4,
        }
    }

    #[test]
    fn no_augmentation_diameter_is_graph_diameter() {
        let g = path(37);
        let est = estimate_greedy_diameter(&g, &NoAugmentation, &quick_cfg()).unwrap();
        assert_eq!(est.greedy_diameter, 36.0);
        let w = est.witness;
        assert!((w.0 == 0 && w.1 == 36) || (w.0 == 36 && w.1 == 0));
    }

    #[test]
    fn uniform_diameter_below_graph_diameter() {
        let g = path(300);
        let est = estimate_greedy_diameter(&g, &UniformScheme, &quick_cfg()).unwrap();
        assert!(est.greedy_diameter < 299.0);
        assert!(est.greedy_diameter > 10.0);
    }

    #[test]
    fn estimate_against_exact_on_small_graph() {
        // The exact greedy diameter upper-bounds the sampled estimate.
        let g = path(16);
        let exact = crate::exact::exact_greedy_diameter(&g, &UniformScheme).unwrap();
        let cfg = DiameterConfig {
            trial: TrialConfig {
                trials_per_pair: 400,
                seed: 6,
                threads: 2,
                ..TrialConfig::default()
            },
            random_pairs: 10,
        };
        let est = estimate_greedy_diameter(&g, &UniformScheme, &cfg).unwrap();
        // The estimator samples pairs, so it can undershoot but not
        // (statistically) overshoot by much.
        assert!(
            est.greedy_diameter <= exact * 1.15 + 1.0,
            "estimate {} vs exact {exact}",
            est.greedy_diameter
        );
    }
}
