//! Scaling-law fits — the reproduction's core methodology.
//!
//! The paper's bounds are asymptotic (`O(√n)`, `Õ(n^{1/3})`, `O(log³n)`),
//! so "reproducing a theorem" means sweeping `n` and fitting the measured
//! mean steps to a model:
//!
//! * power law `y = C·n^γ` — fit on log–log scale; `γ` is the headline
//!   (0.5 for the √n regimes, ≈1/3 for Theorem 4, ≈0 for polylog);
//! * polylog `y = C·(log₂ n)^p` — for the Corollary-1 classes, fit `p`
//!   with `C` profiled out.

/// Least-squares line fit `y = a + b·x` with coefficient of determination.
#[derive(Clone, Copy, Debug)]
pub struct LineFit {
    /// Intercept.
    pub a: f64,
    /// Slope.
    pub b: f64,
    /// R² of the fit.
    pub r2: f64,
}

/// Ordinary least squares on `(x, y)` pairs. Returns `None` with fewer
/// than two distinct x values.
pub fn line_fit(points: &[(f64, f64)]) -> Option<LineFit> {
    let n = points.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = nf * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let b = (nf * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / nf;
    let mean_y = sy / nf;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points.iter().map(|p| (p.1 - (a + b * p.0)).powi(2)).sum();
    let r2 = if ss_tot <= 1e-12 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(LineFit { a, b, r2 })
}

/// A fitted power law `y = C · n^γ`.
#[derive(Clone, Copy, Debug)]
pub struct PowerLawFit {
    /// Multiplicative constant `C`.
    pub c: f64,
    /// The scaling exponent `γ`.
    pub exponent: f64,
    /// R² on log–log scale.
    pub r2: f64,
}

/// Fits `y = C·n^γ` through `(n, y)` points with positive coordinates.
pub fn fit_power_law(points: &[(f64, f64)]) -> Option<PowerLawFit> {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(n, y)| n > 0.0 && y > 0.0)
        .map(|&(n, y)| (n.ln(), y.ln()))
        .collect();
    let lf = line_fit(&logs)?;
    Some(PowerLawFit {
        c: lf.a.exp(),
        exponent: lf.b,
        r2: lf.r2,
    })
}

/// A fitted polylog law `y = C · (log₂ n)^p`.
#[derive(Clone, Copy, Debug)]
pub struct PolylogFit {
    /// Multiplicative constant `C`.
    pub c: f64,
    /// The log power `p`.
    pub power: f64,
    /// R² on the transformed scale.
    pub r2: f64,
}

/// Fits `y = C · (log₂ n)^p` through `(n, y)` points (`n ≥ 2`).
pub fn fit_polylog(points: &[(f64, f64)]) -> Option<PolylogFit> {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(n, y)| n >= 2.0 && y > 0.0)
        .map(|&(n, y)| (n.log2().ln(), y.ln()))
        .collect();
    let lf = line_fit(&logs)?;
    Some(PolylogFit {
        c: lf.a.exp(),
        power: lf.b,
        r2: lf.r2,
    })
}

/// Crossover finder: the smallest `n` in the (sorted-by-n) sweep where
/// series `a` drops strictly below series `b` and stays below for the rest
/// of the sweep. Series are `(n, y)` aligned on identical `n` values.
pub fn crossover(a: &[(f64, f64)], b: &[(f64, f64)]) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len());
    let mut candidate = None;
    for (&(na, ya), &(nb, yb)) in a.iter().zip(b) {
        debug_assert_eq!(na, nb);
        if ya < yb {
            candidate.get_or_insert(na);
        } else {
            candidate = None;
        }
    }
    candidate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let pts: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let f = line_fit(&pts).unwrap();
        assert!((f.a - 3.0).abs() < 1e-9);
        assert!((f.b - 2.0).abs() < 1e-9);
        assert!((f.r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(line_fit(&[]).is_none());
        assert!(line_fit(&[(1.0, 2.0)]).is_none());
        assert!(line_fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
    }

    #[test]
    fn sqrt_law_recovered() {
        let pts: Vec<(f64, f64)> = (8..20)
            .map(|k| {
                let n = (1usize << k) as f64;
                (n, 2.5 * n.sqrt())
            })
            .collect();
        let f = fit_power_law(&pts).unwrap();
        assert!((f.exponent - 0.5).abs() < 1e-9);
        assert!((f.c - 2.5).abs() < 1e-6);
        assert!(f.r2 > 0.999);
    }

    #[test]
    fn cube_root_law_recovered() {
        let pts: Vec<(f64, f64)> = (8..20)
            .map(|k| {
                let n = (1usize << k) as f64;
                (n, 7.0 * n.powf(1.0 / 3.0))
            })
            .collect();
        let f = fit_power_law(&pts).unwrap();
        assert!((f.exponent - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn polylog_recovered() {
        let pts: Vec<(f64, f64)> = (3..16)
            .map(|k| {
                let n = (1usize << k) as f64;
                (n, 0.8 * n.log2().powi(3))
            })
            .collect();
        let f = fit_polylog(&pts).unwrap();
        assert!((f.power - 3.0).abs() < 1e-9);
        assert!((f.c - 0.8).abs() < 1e-6);
    }

    #[test]
    fn polylog_data_has_small_power_exponent() {
        // log³ data fit as a power law over a dyadic n-sweep must show a
        // small exponent (≪ 1/3) — the discriminator used by E3.
        let pts: Vec<(f64, f64)> = (8..18)
            .map(|k| {
                let n = (1usize << k) as f64;
                (n, n.log2().powi(3))
            })
            .collect();
        let f = fit_power_law(&pts).unwrap();
        assert!(f.exponent < 0.45, "γ = {}", f.exponent);
        assert!(f.exponent > 0.0);
    }

    #[test]
    fn noisy_fit_still_close() {
        // Deterministic pseudo-noise ±10%.
        let pts: Vec<(f64, f64)> = (6..18)
            .map(|k| {
                let n = (1usize << k) as f64;
                let noise = 1.0 + 0.1 * ((k as f64 * 2.39).sin());
                (n, 4.0 * n.sqrt() * noise)
            })
            .collect();
        let f = fit_power_law(&pts).unwrap();
        assert!((f.exponent - 0.5).abs() < 0.05, "γ = {}", f.exponent);
        assert!(f.r2 > 0.98);
    }

    #[test]
    fn crossover_detection() {
        let a = vec![(1.0, 10.0), (2.0, 8.0), (4.0, 5.0), (8.0, 2.0)];
        let b = vec![(1.0, 6.0), (2.0, 6.0), (4.0, 6.0), (8.0, 6.0)];
        assert_eq!(crossover(&a, &b), Some(4.0));
        // b dips below a early but is above again later → no crossover.
        assert_eq!(crossover(&b, &a), None);
        // a always above b → None.
        let c = vec![(1.0, 9.0), (2.0, 9.0), (4.0, 9.0), (8.0, 9.0)];
        assert_eq!(crossover(&c, &b), None);
    }
}
