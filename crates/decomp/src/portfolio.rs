//! Best-of portfolio: try every applicable construction, keep the
//! smallest-shape decomposition.
//!
//! Theorem 2's guarantee `O(min{shape·log²n, √n})` holds for whatever
//! decomposition the scheme is built from, so any upper bound on `ps(G)`
//! is usable — better decompositions just route faster. The portfolio
//! mirrors how the paper's scheme would be deployed on an unknown graph.

use crate::construct::{bfs_layers_pd, from_ordering, path_graph_pd};
use crate::decomposition::PathDecomposition;
use crate::measures::decomposition_shape;
use crate::ordering::{cuthill_mckee, identity_order, reverse_cuthill_mckee};
use crate::tree_pd::tree_path_decomposition;
use nav_graph::{properties, Graph};

/// Optional structural hints that unlock specialised constructions.
#[derive(Clone, Debug, Default)]
pub struct Hints {
    /// Interval representation, if the graph is a known interval graph:
    /// unlocks the length-≤1 clique path.
    pub intervals: Option<Vec<(u64, u64)>>,
}

/// Result of a portfolio run.
#[derive(Clone, Debug)]
pub struct PortfolioResult {
    /// The winning decomposition (already [`PathDecomposition::reduce`]d).
    pub pd: PathDecomposition,
    /// Its shape — an upper bound on `ps(G)`.
    pub shape: usize,
    /// Name of the winning construction (for reporting).
    pub winner: &'static str,
}

/// Runs every applicable construction and returns the decomposition with
/// the smallest shape. Always succeeds on connected graphs (the trivial
/// decomposition is a universal fallback with shape ≤ min(n−1, diam)).
pub fn best_path_decomposition(g: &Graph, hints: &Hints) -> PortfolioResult {
    let n = g.num_nodes();
    let mut candidates: Vec<(&'static str, PathDecomposition)> = Vec::new();

    if properties::is_path_graph(g) && ids_are_path_order(g) {
        candidates.push(("path-canonical", path_graph_pd(n)));
    }
    if properties::is_tree(g) {
        candidates.push(("tree-heavy-path", tree_path_decomposition(g)));
    }
    if let Some(iv) = &hints.intervals {
        if iv.len() == n {
            candidates.push((
                "interval-clique-path",
                crate::interval_pd::from_intervals(iv),
            ));
        }
    }
    candidates.push(("order-identity", from_ordering(g, &identity_order(g))));
    candidates.push(("order-cm", from_ordering(g, &cuthill_mckee(g))));
    candidates.push(("order-rcm", from_ordering(g, &reverse_cuthill_mckee(g))));
    candidates.push(("bfs-layers", bfs_layers_pd(g, 0)));
    candidates.push(("trivial", PathDecomposition::trivial(n)));

    let mut best: Option<PortfolioResult> = None;
    for (name, mut pd) in candidates {
        pd.reduce();
        let shape = decomposition_shape(g, &pd);
        let better = match &best {
            None => true,
            Some(b) => shape < b.shape,
        };
        if better {
            best = Some(PortfolioResult {
                pd,
                shape,
                winner: name,
            });
        }
    }
    best.expect("candidate list is never empty")
}

/// True when node ids run along the path (so the canonical width-1 bags
/// `{i, i+1}` apply directly).
fn ids_are_path_order(g: &Graph) -> bool {
    let n = g.num_nodes();
    if n == 1 {
        return true;
    }
    (0..n - 1).all(|u| g.has_edge(u as u32, (u + 1) as u32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_path_decomposition;
    use nav_graph::GraphBuilder;

    fn path_graph(n: usize) -> Graph {
        GraphBuilder::from_edges(n, (0..n as u32 - 1).map(|u| (u, u + 1))).unwrap()
    }

    #[test]
    fn path_wins_with_shape_one() {
        let g = path_graph(50);
        let r = best_path_decomposition(&g, &Hints::default());
        assert!(r.shape <= 1, "shape {} winner {}", r.shape, r.winner);
        validate_path_decomposition(&g, &r.pd).unwrap();
    }

    #[test]
    fn tree_gets_log_shape() {
        let g = GraphBuilder::from_edges(127, (1..127).map(|i| (((i - 1) / 2) as u32, i as u32)))
            .unwrap();
        let r = best_path_decomposition(&g, &Hints::default());
        assert!(r.shape <= 8, "shape {} winner {}", r.shape, r.winner);
        validate_path_decomposition(&g, &r.pd).unwrap();
    }

    #[test]
    fn interval_hint_beats_generic() {
        // Wide nested-interval star-of-cliques: generic orderings do badly,
        // the clique path has shape ≤ 1.
        let n = 40usize;
        let mut iv: Vec<(u64, u64)> = vec![(0, 1000)];
        for i in 1..n {
            iv.push((i as u64 * 10, i as u64 * 10 + 5));
        }
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                let (li, ri) = iv[i];
                let (lj, rj) = iv[j];
                if li <= rj && lj <= ri {
                    b.add_edge(i as u32, j as u32);
                }
            }
        }
        let g = b.build().unwrap();
        let r = best_path_decomposition(
            &g,
            &Hints {
                intervals: Some(iv),
            },
        );
        assert!(r.shape <= 1, "shape {} winner {}", r.shape, r.winner);
        validate_path_decomposition(&g, &r.pd).unwrap();
    }

    #[test]
    fn clique_shape_one_via_length() {
        // K_8: trivial bag has width 7 but length 1 → shape 1.
        let mut b = GraphBuilder::new(8);
        for u in 0..8u32 {
            for v in (u + 1)..8 {
                b.add_edge(u, v);
            }
        }
        let g = b.build().unwrap();
        let r = best_path_decomposition(&g, &Hints::default());
        assert_eq!(r.shape, 1);
    }

    #[test]
    fn result_always_valid_on_misc_graphs() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..5 {
            let g = nav_gen::random::gnp_connected(60, 0.08, &mut rng).unwrap();
            let r = best_path_decomposition(&g, &Hints::default());
            validate_path_decomposition(&g, &r.pd).unwrap();
            assert!(r.shape < 60);
        }
    }

    #[test]
    fn scrambled_path_does_not_use_canonical_bags() {
        // A path whose ids are shuffled: 0-2, 2-1 (path 0,2,1). The
        // canonical {i,i+1} bags would be invalid; CM should still find
        // width 1.
        let g = GraphBuilder::from_edges(3, [(0, 2), (2, 1)]).unwrap();
        let r = best_path_decomposition(&g, &Hints::default());
        validate_path_decomposition(&g, &r.pd).unwrap();
        assert!(r.shape <= 1);
    }
}
