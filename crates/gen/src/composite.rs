//! Composite instances: mixed-growth graphs that separate the schemes.
//!
//! The Õ(n^{1/3}) analysis of Theorem 4 balances two regimes — entering
//! the set `B` of the n^{2/3} closest nodes to the target, then navigating
//! inside it. Graphs that glue a dense part (balls explode) onto a long
//! path (balls grow linearly) exercise exactly that trade-off; the uniform
//! scheme pays `Θ(√n)` on them while the ball scheme pays `Õ(n^{1/3})`.

use nav_graph::{Graph, GraphBuilder, GraphError, NodeId};

/// Lollipop: a clique on `clique` nodes (ids `0..clique`) with a pendant
/// path of `path_len` nodes attached to clique node 0.
/// Total nodes: `clique + path_len`.
pub fn lollipop(clique: usize, path_len: usize) -> Result<Graph, GraphError> {
    if clique == 0 {
        return Err(GraphError::Empty);
    }
    let n = clique + path_len;
    let mut b = GraphBuilder::with_capacity(n, clique * clique / 2 + path_len);
    for u in 0..clique {
        for v in (u + 1)..clique {
            b.add_edge(u as NodeId, v as NodeId);
        }
    }
    let mut prev = 0 as NodeId;
    for i in 0..path_len {
        let v = (clique + i) as NodeId;
        b.add_edge(prev, v);
        prev = v;
    }
    b.build()
}

/// Barbell: two cliques of `clique` nodes joined by a path of `path_len`
/// intermediate nodes. Total: `2·clique + path_len`.
pub fn barbell(clique: usize, path_len: usize) -> Result<Graph, GraphError> {
    if clique == 0 {
        return Err(GraphError::Empty);
    }
    let n = 2 * clique + path_len;
    let mut b = GraphBuilder::with_capacity(n, clique * clique + path_len + 2);
    for base in [0, clique + path_len] {
        for u in 0..clique {
            for v in (u + 1)..clique {
                b.add_edge((base + u) as NodeId, (base + v) as NodeId);
            }
        }
    }
    // Path from clique-1 node 0 through the middle nodes to clique-2 node 0.
    let mut prev = 0 as NodeId;
    for i in 0..path_len {
        let v = (clique + i) as NodeId;
        b.add_edge(prev, v);
        prev = v;
    }
    b.add_edge(prev, (clique + path_len) as NodeId);
    b.build()
}

/// Comb: a spine path of `spine` nodes, each carrying a pendant "tooth"
/// path of `tooth_len` nodes. Total: `spine · (1 + tooth_len)`.
pub fn comb(spine: usize, tooth_len: usize) -> Result<Graph, GraphError> {
    if spine == 0 {
        return Err(GraphError::Empty);
    }
    let n = spine * (1 + tooth_len);
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for u in 1..spine {
        b.add_edge((u - 1) as NodeId, u as NodeId);
    }
    for s in 0..spine {
        let mut prev = s as NodeId;
        for t in 0..tooth_len {
            let v = (spine + s * tooth_len + t) as NodeId;
            b.add_edge(prev, v);
            prev = v;
        }
    }
    b.build()
}

/// Clique chain ("path of cliques"): `count` cliques of `size` nodes;
/// consecutive cliques share **one** node, so the chain is 1-connected and
/// has small pathlength. Total nodes: `count·size − (count−1)`.
pub fn clique_chain(count: usize, size: usize) -> Result<Graph, GraphError> {
    if count == 0 || size == 0 {
        return Err(GraphError::Empty);
    }
    if size == 1 {
        // Degenerates to a single node repeated; produce a path instead.
        return crate::classic::path(count);
    }
    let n = count * size - (count - 1);
    let mut b = GraphBuilder::with_capacity(n, count * size * size / 2);
    // Clique k occupies [k·(size−1), k·(size−1) + size); consecutive
    // cliques overlap in exactly the boundary node.
    for k in 0..count {
        let base = k * (size - 1);
        for u in 0..size {
            for v in (u + 1)..size {
                b.add_edge((base + u) as NodeId, (base + v) as NodeId);
            }
        }
    }
    b.build()
}

/// Dense-core lollipop: a **dyadic-circulant expander** on `core` nodes
/// (strides 1, 2, 4, …: degree `2⌈log₂ core⌉`, diameter `O(log core)`)
/// with a pendant path of `path_len` nodes attached to core node 0.
///
/// Metrically this behaves like [`lollipop`] (balls inside the core
/// explode to the whole core within `O(log)` radius) but has `O(n log n)`
/// edges instead of `Θ(n²)`, keeping ball-scheme sampling affordable at
/// experiment scale — the substitution documented in DESIGN.md.
pub fn expander_lollipop(core: usize, path_len: usize) -> Result<Graph, GraphError> {
    if core < 3 {
        return Err(GraphError::Empty);
    }
    let n = core + path_len;
    let log = (usize::BITS - (core - 1).leading_zeros()) as usize;
    let mut b = GraphBuilder::with_capacity(n, core * log + path_len);
    for u in 0..core {
        let mut s = 1usize;
        while s < core {
            b.add_edge(u as NodeId, ((u + s) % core) as NodeId);
            s <<= 1;
        }
    }
    let mut prev = 0 as NodeId;
    for i in 0..path_len {
        let v = (core + i) as NodeId;
        b.add_edge(prev, v);
        prev = v;
    }
    b.build()
}

/// The Theorem-4 stress instance used by experiment E7: a lollipop whose
/// pendant path holds ~`n^{2/3}` nodes and whose dense core holds the
/// rest, so that the `n^{2/3}` nodes closest to a path-end target form the
/// path itself, making "entering B" cost Θ(n^{1/3} log n) for the ball
/// scheme but Θ(√n) for uniform. The core is the expander of
/// [`expander_lollipop`] (metrically a clique up to log factors, linearly
/// many edges).
pub fn theorem4_stress(n: usize) -> Result<Graph, GraphError> {
    let path_len = ((n as f64).powf(2.0 / 3.0).round() as usize).min(n.saturating_sub(3));
    expander_lollipop(n - path_len, path_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nav_graph::components::is_connected;
    use nav_graph::distance::diameter_exact;
    use nav_graph::properties::is_tree;

    #[test]
    fn lollipop_structure() {
        let g = lollipop(5, 4).unwrap();
        assert_eq!(g.num_nodes(), 9);
        assert_eq!(g.num_edges(), 10 + 4);
        assert!(is_connected(&g));
        assert_eq!(diameter_exact(&g), Some(1 + 4));
        assert_eq!(g.degree(0), 4 + 1); // clique + path attachment
    }

    #[test]
    fn lollipop_no_path_is_clique() {
        let g = lollipop(6, 0).unwrap();
        assert_eq!(g.num_edges(), 15);
        assert_eq!(diameter_exact(&g), Some(1));
    }

    #[test]
    fn barbell_structure() {
        let g = barbell(4, 3).unwrap();
        assert_eq!(g.num_nodes(), 11);
        assert!(is_connected(&g));
        // clique diameter 1 + path 4 hops + 1 = dist between far corners
        assert_eq!(diameter_exact(&g), Some(1 + 4 + 1));
    }

    #[test]
    fn barbell_zero_path_still_connected() {
        let g = barbell(3, 0).unwrap();
        assert_eq!(g.num_nodes(), 6);
        assert!(is_connected(&g));
    }

    #[test]
    fn comb_structure() {
        let g = comb(5, 3).unwrap();
        assert_eq!(g.num_nodes(), 20);
        assert!(is_tree(&g));
        // tooth tip to tooth tip: 3 + 4 + 3
        assert_eq!(diameter_exact(&g), Some(10));
    }

    #[test]
    fn comb_no_teeth_is_path() {
        let g = comb(7, 0).unwrap();
        assert!(nav_graph::properties::is_path_graph(&g));
    }

    #[test]
    fn clique_chain_structure() {
        let g = clique_chain(3, 4).unwrap();
        assert_eq!(g.num_nodes(), 3 * 4 - 2);
        assert!(is_connected(&g));
        assert_eq!(diameter_exact(&g), Some(3));
        // Shared nodes have degree 2·(size−1).
        assert_eq!(g.degree(3), 6);
    }

    #[test]
    fn clique_chain_size_one_degenerates_to_path() {
        let g = clique_chain(5, 1).unwrap();
        assert!(nav_graph::properties::is_path_graph(&g));
    }

    #[test]
    fn expander_lollipop_structure() {
        let g = expander_lollipop(256, 50).unwrap();
        assert_eq!(g.num_nodes(), 306);
        assert!(is_connected(&g));
        // Core diameter is logarithmic; edges are n·log, not n².
        assert!(g.num_edges() < 256 * 10 + 60);
        let d = diameter_exact(&g).unwrap();
        assert!((50..=70).contains(&d), "d = {d}");
        assert!(expander_lollipop(2, 5).is_err());
    }

    #[test]
    fn theorem4_stress_plausible_split() {
        let g = theorem4_stress(1000).unwrap();
        assert_eq!(g.num_nodes(), 1000);
        assert!(is_connected(&g));
        // path_len = round(1000^(2/3)) = 100; core adds only O(log) more.
        let d = diameter_exact(&g).unwrap();
        assert!((100..=120).contains(&d), "d = {d}");
    }

    #[test]
    fn degenerate_inputs() {
        assert!(lollipop(0, 5).is_err());
        assert!(comb(0, 2).is_err());
        assert!(clique_chain(0, 3).is_err());
    }
}
