//! Permutation graphs — the second AT-free family of Corollary 1.
//!
//! Nodes are positions `0..n`; `i ~ j` iff the pair is *inverted* by the
//! permutation: `(i < j) ∧ (π(i) > π(j))`. A uniform random permutation
//! yields a dense graph (~n²/4 edges), usable only at small `n`; the
//! *banded* construction below produces sparse connected permutation
//! graphs at any scale.

use nav_graph::{Graph, GraphBuilder, GraphError, NodeId};
use rand::Rng;

/// Builds the permutation graph of `perm` (edges = inversions). `O(n²)` —
/// use only for small/medium `n`.
pub fn permutation_graph(perm: &[usize]) -> Result<Graph, GraphError> {
    let n = perm.len();
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if perm[i] > perm[j] {
                b.add_edge(i as NodeId, j as NodeId);
            }
        }
    }
    b.build()
}

/// Uniform random permutation graph, **repaired to be connected** by
/// breaking "prefix fixpoints": whenever `π({0..k}) = {0..k}` for `k <
/// n−1` the graph splits there, so we swap `π(k) ↔ π(k+1)` — the result is
/// still a permutation, hence still a permutation graph.
///
/// Returns the graph and the final permutation.
pub fn random_permutation_graph(
    n: usize,
    rng: &mut impl Rng,
) -> Result<(Graph, Vec<usize>), GraphError> {
    if n == 0 {
        return Err(GraphError::Empty);
    }
    let mut perm: Vec<usize> = (0..n).collect();
    // Fisher–Yates.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    make_indecomposable(&mut perm);
    let g = permutation_graph(&perm)?;
    Ok((g, perm))
}

/// Sparse connected permutation graph: consecutive blocks of random size in
/// `[2, max_block]` are reversed, then the boundary values are swapped so
/// consecutive block-cliques share edges (see module docs of the design
/// document). Edge count is `O(n · max_block)`.
///
/// Returns the graph and the permutation.
pub fn banded_permutation_graph(
    n: usize,
    max_block: usize,
    rng: &mut impl Rng,
) -> Result<(Graph, Vec<usize>), GraphError> {
    if n == 0 {
        return Err(GraphError::Empty);
    }
    let max_block = max_block.max(2);
    let mut perm: Vec<usize> = (0..n).collect();
    // Partition into blocks and reverse each.
    let mut boundaries = Vec::new(); // starts of blocks after the first
    let mut s = 0usize;
    while s < n {
        let w = rng.gen_range(2..=max_block).min(n - s);
        perm[s..s + w].reverse();
        if s > 0 {
            boundaries.push(s);
        }
        s += w;
    }
    // Swap values across each boundary to chain the block cliques.
    for &b in &boundaries {
        perm.swap(b - 1, b);
    }
    // Reversing/swapping can re-create prefix fixpoints in degenerate
    // cases (e.g. trailing width-1 blocks); repair just like above.
    make_indecomposable(&mut perm);
    // The banded structure keeps every inversion within O(max_block) of
    // the diagonal, so enumerate only nearby pairs.
    let band = 2 * max_block + 2;
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..(i + band).min(n) {
            if perm[i] > perm[j] {
                b.add_edge(i as NodeId, j as NodeId);
            }
        }
    }
    // Defensive: verify no inversion escaped the band (would indicate a
    // construction bug); cheap O(n) check on the block structure instead
    // of O(n²): max displacement must be < band.
    debug_assert!(perm.iter().enumerate().all(|(i, &v)| v.abs_diff(i) < band));
    let g = b.build()?;
    Ok((g, perm))
}

/// Breaks every proper prefix fixpoint `π({0..k}) = {0..k}` by swapping
/// across it, making the permutation graph connected (for n ≥ 2).
fn make_indecomposable(perm: &mut [usize]) {
    let n = perm.len();
    if n < 2 {
        return;
    }
    loop {
        let mut changed = false;
        let mut max_so_far = 0usize;
        for k in 0..n - 1 {
            max_so_far = max_so_far.max(perm[k]);
            if max_so_far == k {
                perm.swap(k, k + 1);
                changed = true;
                max_so_far = max_so_far.max(perm[k]);
            }
        }
        if !changed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nav_graph::components::is_connected;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn identity_has_no_edges_reverse_is_complete() {
        let id: Vec<usize> = (0..6).collect();
        let g = permutation_graph(&id).unwrap();
        assert_eq!(g.num_edges(), 0);
        let rev: Vec<usize> = (0..6).rev().collect();
        let g = permutation_graph(&rev).unwrap();
        assert_eq!(g.num_edges(), 15); // K6
    }

    #[test]
    fn single_inversion_single_edge() {
        let g = permutation_graph(&[0, 2, 1, 3]).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn random_permutation_graph_connected() {
        for seed in 0..10u64 {
            let (g, perm) = random_permutation_graph(60, &mut rng(seed)).unwrap();
            assert!(is_connected(&g), "seed {seed}");
            // perm is a permutation
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..60).collect::<Vec<_>>());
        }
    }

    #[test]
    fn banded_graph_connected_and_sparse() {
        for seed in 0..5u64 {
            let n = 500;
            let (g, perm) = banded_permutation_graph(n, 6, &mut rng(seed)).unwrap();
            assert!(is_connected(&g), "seed {seed}");
            assert!(g.num_edges() < n * 20, "too dense: {} edges", g.num_edges());
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn banded_matches_bruteforce_on_small_n() {
        for seed in 0..5u64 {
            let (g, perm) = banded_permutation_graph(40, 5, &mut rng(seed)).unwrap();
            let brute = permutation_graph(&perm).unwrap();
            assert_eq!(g, brute, "seed {seed}");
        }
    }

    #[test]
    fn indecomposable_repair_on_identity() {
        let mut p: Vec<usize> = (0..8).collect();
        make_indecomposable(&mut p);
        let g = permutation_graph(&p).unwrap();
        assert!(is_connected(&g));
    }

    #[test]
    fn tiny_sizes() {
        assert!(random_permutation_graph(0, &mut rng(0)).is_err());
        let (g, _) = random_permutation_graph(1, &mut rng(0)).unwrap();
        assert_eq!(g.num_nodes(), 1);
        let (g, _) = random_permutation_graph(2, &mut rng(0)).unwrap();
        assert!(is_connected(&g));
    }
}
