//! Node labelings `L : V → {1, …, k}` (shared labels allowed).

use crate::ancestry::max_level_index;
use nav_decomp::decomposition::PathDecomposition;
use nav_graph::NodeId;

/// A labeling of `n` nodes with labels in `1..=k` plus the reverse index
/// (label → nodes carrying it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Labeling {
    label_of: Vec<u32>,
    /// `buckets[j-1]` = sorted nodes labeled `j`.
    buckets: Vec<Vec<NodeId>>,
}

impl Labeling {
    /// Builds from per-node labels (values must be in `1..=k`).
    pub fn new(label_of: Vec<u32>, k: usize) -> Self {
        let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        for (u, &l) in label_of.iter().enumerate() {
            assert!(
                (1..=k as u32).contains(&l),
                "label {l} of node {u} outside 1..={k}"
            );
            buckets[(l - 1) as usize].push(u as NodeId);
        }
        Labeling { label_of, buckets }
    }

    /// The identity labeling: node `u` gets label `u + 1` (distinct labels).
    pub fn identity(n: usize) -> Self {
        Labeling::new((1..=n as u32).collect(), n)
    }

    /// A labeling from a permutation of `{0, …, n−1}`: node `u` gets label
    /// `perm[u] + 1`. Used by the Theorem-1 adversary to place chosen
    /// labels on chosen path positions.
    pub fn from_permutation(perm: &[usize]) -> Self {
        let n = perm.len();
        Labeling::new(perm.iter().map(|&p| p as u32 + 1).collect(), n)
    }

    /// **The paper's Theorem-2 labeling.** Bags of a path-decomposition
    /// are numbered `1..=b` along the path; each node `u` occupies a
    /// contiguous interval `I_u` of bags, and `L(u)` is the unique index
    /// of maximum dyadic level in `I_u`. Label space: `1..=k` where
    /// `k = max(b, 1)` (all labels valid even if some unused).
    ///
    /// # Panics
    /// Panics if some node appears in no bag (invalid decomposition).
    pub fn from_path_decomposition(pd: &PathDecomposition, num_nodes: usize) -> Self {
        let b = pd.num_bags().max(1);
        let intervals = pd.node_intervals(num_nodes);
        let label_of: Vec<u32> = intervals
            .iter()
            .enumerate()
            .map(|(u, iv)| {
                let (lo, hi) = iv.unwrap_or_else(|| panic!("node {u} not in any bag"));
                max_level_index(lo as u64 + 1, hi as u64 + 1) as u32
            })
            .collect();
        Labeling::new(label_of, b)
    }

    /// Number of nodes labeled.
    pub fn num_nodes(&self) -> usize {
        self.label_of.len()
    }

    /// Size of the label space `k`.
    pub fn num_labels(&self) -> usize {
        self.buckets.len()
    }

    /// Label of node `u` (1-based).
    #[inline]
    pub fn label(&self, u: NodeId) -> u32 {
        self.label_of[u as usize]
    }

    /// Sorted nodes carrying label `j` (may be empty).
    #[inline]
    pub fn bucket(&self, j: u32) -> &[NodeId] {
        &self.buckets[(j - 1) as usize]
    }

    /// Number of distinct labels actually used.
    pub fn labels_used(&self) -> usize {
        self.buckets.iter().filter(|b| !b.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_labeling() {
        let l = Labeling::identity(4);
        assert_eq!(l.num_labels(), 4);
        for u in 0..4u32 {
            assert_eq!(l.label(u), u + 1);
            assert_eq!(l.bucket(u + 1), &[u]);
        }
        assert_eq!(l.labels_used(), 4);
    }

    #[test]
    fn shared_labels_bucket() {
        let l = Labeling::new(vec![2, 2, 1, 2], 3);
        assert_eq!(l.bucket(2), &[0, 1, 3]);
        assert_eq!(l.bucket(1), &[2]);
        assert!(l.bucket(3).is_empty());
        assert_eq!(l.labels_used(), 2);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_label_panics() {
        let _ = Labeling::new(vec![0, 1], 2);
    }

    #[test]
    fn from_permutation() {
        let l = Labeling::from_permutation(&[2, 0, 1]);
        assert_eq!(l.label(0), 3);
        assert_eq!(l.label(1), 1);
        assert_eq!(l.label(2), 2);
    }

    #[test]
    fn theorem2_labeling_on_path_decomposition() {
        // Path 0-1-2-3-4 canonical decomposition: bags {i,i+1}, b = 4.
        // Node 0: I = [1,1] → L=1. Node 1: I=[1,2] → max level index = 2.
        // Node 2: I=[2,3] → 2. Node 3: I=[3,4] → 4. Node 4: I=[4,4] → 4.
        let pd = PathDecomposition::new(vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4]]);
        let l = Labeling::from_path_decomposition(&pd, 5);
        assert_eq!(l.label(0), 1);
        assert_eq!(l.label(1), 2);
        assert_eq!(l.label(2), 2);
        assert_eq!(l.label(3), 4);
        assert_eq!(l.label(4), 4);
        assert_eq!(l.num_labels(), 4);
    }

    #[test]
    fn theorem2_label_is_inside_interval() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let b = rng.gen_range(1..40usize);
            // One node occupying a random interval of bags.
            let lo = rng.gen_range(0..b);
            let hi = rng.gen_range(lo..b);
            let bags: Vec<Vec<NodeId>> = (0..b)
                .map(|i| if i >= lo && i <= hi { vec![0] } else { vec![] })
                .collect();
            let pd = PathDecomposition::new(bags);
            // Pad: other bags empty is fine for this unit-level check.
            let l = Labeling::from_path_decomposition(&pd, 1);
            let lab = l.label(0) as usize;
            assert!((lo + 1..=hi + 1).contains(&lab));
        }
    }

    #[test]
    #[should_panic(expected = "not in any bag")]
    fn uncovered_node_panics() {
        let pd = PathDecomposition::new(vec![vec![0]]);
        let _ = Labeling::from_path_decomposition(&pd, 2);
    }

    #[test]
    fn single_bag_decomposition_all_same_label() {
        let pd = PathDecomposition::trivial(6);
        let l = Labeling::from_path_decomposition(&pd, 6);
        for u in 0..6u32 {
            assert_eq!(l.label(u), 1);
        }
        assert_eq!(l.num_labels(), 1);
    }
}
