//! Greedy routing in augmented graphs.
//!
//! The oblivious protocol of the paper: at the current node `u` with
//! target `t`, forward to the neighbour — among `u`'s local neighbours
//! **and `u`'s own long-range contact** — closest to `t` in the underlying
//! metric `dist_G`. Nodes know `dist_G` but not each other's long-range
//! links.
//!
//! Implementation notes:
//! * one distance row from the target serves the whole trial — computed by
//!   a fresh BFS ([`GreedyRouter::new`]) or borrowed from the batched
//!   [`crate::oracle::TargetDistanceCache`] ([`GreedyRouter::from_row`]);
//! * the long-range contact of each visited node is sampled lazily
//!   (deferred decisions — exact because greedy routing never revisits:
//!   the best local neighbour already strictly decreases the distance);
//! * ties are broken toward the local neighbour and then by smallest node
//!   id, making trials reproducible given the RNG seed.

use crate::faulty::FailurePlan;
use crate::sampler::{ContactSampler, ScalarSampler};
use crate::scheme::AugmentationScheme;
use nav_graph::distance::{DistRowView, NARROW_INFINITY};
use nav_graph::{bfs::Bfs, Graph, GraphError, NodeId, INFINITY};
use rand::RngCore;
use std::cell::Cell;

/// Outcome of one greedy-routing trial.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteOutcome {
    /// Steps taken (edges traversed).
    pub steps: u32,
    /// Whether the target was reached (always true on connected graphs —
    /// kept for robustness against disconnected inputs + step caps).
    pub reached: bool,
    /// How many of the steps used a long-range link.
    pub long_links_used: u32,
    /// The visited nodes `s, …, t` if path recording was requested.
    pub path: Option<Vec<NodeId>>,
}

/// The router's target-distance row: owned (one BFS), or borrowed at
/// either storage width — full-width oracle rows and the serving cache's
/// compact (`u16`) resident rows route without any copy or widening.
enum Row<'g> {
    Owned(Vec<u32>),
    Wide(&'g [u32]),
    Narrow(&'g [u16]),
}

impl Row<'_> {
    #[inline]
    fn get(&self, i: usize) -> u32 {
        match self {
            Row::Owned(v) => v[i],
            Row::Wide(v) => v[i],
            Row::Narrow(v) => {
                let d = v[i];
                if d == NARROW_INFINITY {
                    INFINITY
                } else {
                    d as u32
                }
            }
        }
    }
}

/// A churn view bound to one epoch, plus the tallies fault-aware routing
/// accumulates. The counters are `Cell`s so the read-only routing API
/// (`&self`) can count without threading mutability through every step —
/// a router is built per worker and never shared across threads.
struct FaultState {
    plan: FailurePlan,
    epoch: u64,
    dropped: Cell<u64>,
    rerouted: Cell<u64>,
}

/// A router bound to one (graph, target) pair; reusable across sources and
/// trials. The target-distance row is either owned (computed by one BFS)
/// or borrowed — from a shared [`crate::oracle::TargetDistanceCache`] row,
/// or from compact cached storage via [`GreedyRouter::from_row_view`].
pub struct GreedyRouter<'g> {
    g: &'g Graph,
    target: NodeId,
    dist_t: Row<'g>,
    fault: Option<FaultState>,
}

impl<'g> GreedyRouter<'g> {
    /// Builds the router (runs one BFS from `target`).
    pub fn new(g: &'g Graph, target: NodeId) -> Result<Self, GraphError> {
        g.check_node(target)?;
        let mut bfs = Bfs::new(g.num_nodes());
        let dist_t = Row::Owned(bfs.distances(g, target));
        Ok(GreedyRouter {
            g,
            target,
            dist_t,
            fault: None,
        })
    }

    /// Builds the router reusing a caller-provided BFS workspace.
    pub fn with_workspace(g: &'g Graph, target: NodeId, bfs: &mut Bfs) -> Result<Self, GraphError> {
        g.check_node(target)?;
        let dist_t = Row::Owned(bfs.distances(g, target));
        Ok(GreedyRouter {
            g,
            target,
            dist_t,
            fault: None,
        })
    }

    /// Builds the router on a borrowed, precomputed distance row
    /// (`dist_t[v] = dist_G(v, target)`) — no BFS. This is how the
    /// distance-oracle layer hands out routers.
    ///
    /// # Panics
    /// Panics if `dist_t.len() != g.num_nodes()` or `dist_t[target] != 0`
    /// (a row that cannot be a distance row of `target`).
    pub fn from_row(g: &'g Graph, target: NodeId, dist_t: &'g [u32]) -> Result<Self, GraphError> {
        Self::from_row_view(g, target, DistRowView::Wide(dist_t))
    }

    /// [`GreedyRouter::from_row`] for a width-agnostic
    /// [`DistRowView`] — the serving layer's compact (`u16`) cached rows
    /// are routed on directly, with no widening copy. Narrow values are
    /// decoded on the fly ([`NARROW_INFINITY`] ⇔ [`INFINITY`]), so routing
    /// decisions are bit-identical to the full-width row.
    ///
    /// # Panics
    /// Same conditions as [`GreedyRouter::from_row`].
    pub fn from_row_view(
        g: &'g Graph,
        target: NodeId,
        dist_t: DistRowView<'g>,
    ) -> Result<Self, GraphError> {
        g.check_node(target)?;
        assert_eq!(
            dist_t.len(),
            g.num_nodes(),
            "distance row length must equal node count"
        );
        assert_eq!(
            dist_t.get(target as usize),
            0,
            "row is not a distance row of target {target}"
        );
        let dist_t = match dist_t {
            DistRowView::Wide(v) => Row::Wide(v),
            DistRowView::Narrow(v) => Row::Narrow(v),
        };
        Ok(GreedyRouter {
            g,
            target,
            dist_t,
            fault: None,
        })
    }

    /// Binds the router to one epoch of a node-churn [`FailurePlan`]:
    /// every subsequent step treats the epoch's down nodes as
    /// unforwardable — a down contact is discarded, the local scan
    /// considers only live neighbours (the paper's best-live-hop
    /// fallback), and a walk whose every improving neighbour is down
    /// gets stuck (surfaced as `reached == false` by the trial layer).
    /// The routing target itself is exempt: it is the node asking.
    ///
    /// The fault-free path (`fault == None`) is untouched, bit for bit.
    pub fn with_fault(mut self, plan: FailurePlan, epoch: u64) -> Self {
        self.fault = Some(FaultState {
            plan,
            epoch,
            dropped: Cell::new(0),
            rerouted: Cell::new(0),
        });
        self
    }

    /// The fault tallies accumulated so far:
    /// `(contacts discarded because the contact node was down,
    ///   hops where the fault-free winner was down and routing fell back
    ///   to a different live hop)`. `(0, 0)` without a fault view.
    pub fn fault_counts(&self) -> (u64, u64) {
        match &self.fault {
            Some(f) => (f.dropped.get(), f.rerouted.get()),
            None => (0, 0),
        }
    }

    /// The churn epoch this router is bound to, when it has a fault view.
    pub fn fault_epoch(&self) -> Option<u64> {
        self.fault.as_ref().map(|f| f.epoch)
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    /// The routing target.
    pub fn target(&self) -> NodeId {
        self.target
    }

    /// `dist_G(u, target)`.
    #[inline]
    pub fn dist_to_target(&self, u: NodeId) -> u32 {
        self.dist_t.get(u as usize)
    }

    /// The greedy *local* next hop from `u`: the neighbour closest to the
    /// target, smallest id on ties. On a connected graph this neighbour is
    /// at distance exactly `dist(u, t) − 1`.
    pub fn local_next(&self, u: NodeId) -> Option<NodeId> {
        let mut best: Option<(u32, NodeId)> = None;
        for &v in self.g.neighbors(u) {
            let d = self.dist_t.get(v as usize);
            // Sorted adjacency ⇒ first strict improvement wins ties by id.
            match best {
                Some((bd, _)) if d >= bd => {}
                _ => best = Some((d, v)),
            }
        }
        best.map(|(_, v)| v)
    }

    /// One greedy step from `u` given an already-drawn contact: the next
    /// hop plus whether the move used the long-range link (the contact
    /// won *and* is not also a local edge). `None` when no neighbour
    /// improves (an isolated node with a useless contact). This is the
    /// single definition of step semantics — the sequential walk
    /// ([`GreedyRouter::route_with`]) and the trial engine's lockstep
    /// rounds both take steps through it.
    #[inline]
    pub fn step(&self, u: NodeId, contact: Option<NodeId>) -> Option<(NodeId, bool)> {
        if let Some(f) = &self.fault {
            return self.step_faulty(u, contact, f);
        }
        let next = self.next_hop(u, contact)?;
        debug_assert!(
            self.dist_t.get(next as usize) < self.dist_t.get(u as usize),
            "greedy step must strictly decrease target distance"
        );
        let long = Some(next) == contact && self.g.neighbors(u).binary_search(&next).is_err();
        Some((next, long))
    }

    /// Whether churn has `v` down in this router's epoch (the target is
    /// exempt — it is the node asking the query).
    #[inline]
    fn down(&self, v: NodeId, f: &FaultState) -> bool {
        v != self.target && f.plan.is_down(f.epoch, v)
    }

    /// [`GreedyRouter::local_next`] restricted to live neighbours.
    fn local_next_live(&self, u: NodeId, f: &FaultState) -> Option<NodeId> {
        let mut best: Option<(u32, NodeId)> = None;
        for &v in self.g.neighbors(u) {
            if self.down(v, f) {
                continue;
            }
            let d = self.dist_t.get(v as usize);
            match best {
                Some((bd, _)) if d >= bd => {}
                _ => best = Some((d, v)),
            }
        }
        best.map(|(_, v)| v)
    }

    /// One step under node churn: a down contact cannot be forwarded to,
    /// the local scan is restricted to live neighbours, and the chosen
    /// hop must still strictly decrease the target distance — greedy's
    /// termination guarantee. When churn has taken every improving
    /// neighbour down the walk is stuck and the step returns `None`
    /// (the caller records the trial as a failure — this is exactly the
    /// degradation signal the fault benches measure).
    fn step_faulty(
        &self,
        u: NodeId,
        contact: Option<NodeId>,
        f: &FaultState,
    ) -> Option<(NodeId, bool)> {
        let live_contact = match contact {
            Some(c) if self.down(c, f) => {
                f.dropped.set(f.dropped.get() + 1);
                None
            }
            c => c,
        };
        let next = match (self.local_next_live(u, f), live_contact) {
            (None, c) => c.filter(|&v| self.dist_t.get(v as usize) < self.dist_t.get(u as usize)),
            (Some(l), None) => Some(l),
            (Some(l), Some(c)) => {
                if self.dist_t.get(c as usize) < self.dist_t.get(l as usize) {
                    Some(c)
                } else {
                    Some(l)
                }
            }
        }?;
        if self.dist_t.get(next as usize) >= self.dist_t.get(u as usize) {
            return None; // stuck: no live neighbour improves
        }
        // Filtering only removes candidates, so when the fault-free
        // winner is live it is also the live winner; the hop rerouted
        // exactly when that winner is down.
        if let Some(free) = self.next_hop(u, contact) {
            if self.down(free, f) {
                f.rerouted.set(f.rerouted.get() + 1);
            }
        }
        let long = Some(next) == live_contact && self.g.neighbors(u).binary_search(&next).is_err();
        Some((next, long))
    }

    /// The greedy next hop given an already-drawn long-range contact.
    /// The contact wins only when **strictly** closer than the best local
    /// neighbour (ties → local, then smallest id; the paper allows any
    /// tie-breaking).
    pub fn next_hop(&self, u: NodeId, contact: Option<NodeId>) -> Option<NodeId> {
        let local = self.local_next(u);
        match (local, contact) {
            (None, c) => c.filter(|&v| self.dist_t.get(v as usize) < self.dist_t.get(u as usize)),
            (Some(l), None) => Some(l),
            (Some(l), Some(c)) => {
                if self.dist_t.get(c as usize) < self.dist_t.get(l as usize) {
                    Some(c)
                } else {
                    Some(l)
                }
            }
        }
    }

    /// Routes one trial from `source` to the bound target, sampling
    /// long-range contacts lazily from `scheme`.
    ///
    /// `max_steps` caps the walk (use [`default_step_cap`]); the cap only
    /// triggers on disconnected graphs or broken schemes, and is surfaced
    /// through `reached == false`.
    ///
    /// Equivalent to [`GreedyRouter::route_with`] over a
    /// [`ScalarSampler`] — the same RNG stream bit for bit.
    pub fn route<S: AugmentationScheme + ?Sized>(
        &self,
        scheme: &S,
        source: NodeId,
        rng: &mut dyn RngCore,
        max_steps: u32,
        record_path: bool,
    ) -> RouteOutcome {
        self.route_with(
            &mut ScalarSampler::new(scheme),
            source,
            rng,
            max_steps,
            record_path,
        )
    }

    /// [`GreedyRouter::route`] with the per-step draws coming from a
    /// caller-owned [`ContactSampler`] — the entry point of the batched
    /// sampling backends (ball-row cache, pre-realized tables). The
    /// sampler outlives the call, so its cached state amortises across
    /// all trials a worker routes through it.
    pub fn route_with<C: ContactSampler + ?Sized>(
        &self,
        sampler: &mut C,
        source: NodeId,
        rng: &mut dyn RngCore,
        max_steps: u32,
        record_path: bool,
    ) -> RouteOutcome {
        let mut u = source;
        let mut steps = 0u32;
        let mut long_links_used = 0u32;
        let mut path = if record_path {
            Some(vec![source])
        } else {
            None
        };
        while u != self.target && steps < max_steps {
            if self.dist_t.get(u as usize) == INFINITY {
                break; // target unreachable from here
            }
            let contact = sampler.sample(self.g, u, rng);
            let Some((next, long)) = self.step(u, contact) else {
                break; // isolated node and useless contact
            };
            long_links_used += long as u32;
            if let Some(p) = path.as_mut() {
                p.push(next);
            }
            u = next;
            steps += 1;
        }
        RouteOutcome {
            steps,
            reached: u == self.target,
            long_links_used,
            path,
        }
    }
}

/// A generous step cap: `dist(s,t) ≤ steps` always, and greedy strictly
/// decreases distance, so `n` steps can never be exceeded on a connected
/// graph; the cap `n + 1` detects violations without masking them.
pub fn default_step_cap(g: &Graph) -> u32 {
    g.num_nodes() as u32 + 1
}

/// One-shot convenience: builds a fresh router and routes once.
pub fn route_with_fresh_oracle<S: AugmentationScheme + ?Sized>(
    g: &Graph,
    scheme: &S,
    source: NodeId,
    target: NodeId,
    rng: &mut dyn RngCore,
) -> Result<RouteOutcome, GraphError> {
    g.check_node(source)?;
    let router = GreedyRouter::new(g, target)?;
    Ok(router.route(scheme, source, rng, default_step_cap(g), false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::{NoAugmentation, UniformScheme};
    use nav_graph::GraphBuilder;
    use nav_par::rng::seeded_rng;

    fn path(n: usize) -> Graph {
        GraphBuilder::from_edges(n, (0..n as NodeId - 1).map(|u| (u, u + 1))).unwrap()
    }

    #[test]
    fn no_augmentation_walks_shortest_path() {
        let g = path(20);
        let router = GreedyRouter::new(&g, 19).unwrap();
        let mut rng = seeded_rng(1);
        let out = router.route(&NoAugmentation, 0, &mut rng, default_step_cap(&g), true);
        assert!(out.reached);
        assert_eq!(out.steps, 19);
        assert_eq!(out.long_links_used, 0);
        let p = out.path.unwrap();
        assert_eq!(p.len(), 20);
        assert_eq!(p[0], 0);
        assert_eq!(p[19], 19);
    }

    #[test]
    fn zero_length_route() {
        let g = path(5);
        let router = GreedyRouter::new(&g, 2).unwrap();
        let mut rng = seeded_rng(2);
        let out = router.route(&NoAugmentation, 2, &mut rng, default_step_cap(&g), true);
        assert!(out.reached);
        assert_eq!(out.steps, 0);
        assert_eq!(out.path.unwrap(), vec![2]);
    }

    #[test]
    fn uniform_never_slower_than_shortest_path() {
        let g = path(64);
        let router = GreedyRouter::new(&g, 63).unwrap();
        let mut rng = seeded_rng(3);
        for _ in 0..50 {
            let out = router.route(&UniformScheme, 0, &mut rng, default_step_cap(&g), false);
            assert!(out.reached);
            assert!(out.steps <= 63);
            assert!(out.steps >= 1);
        }
    }

    #[test]
    fn distance_strictly_decreases_along_path() {
        let g = path(100);
        let router = GreedyRouter::new(&g, 99).unwrap();
        let mut rng = seeded_rng(4);
        let out = router.route(&UniformScheme, 0, &mut rng, default_step_cap(&g), true);
        let p = out.path.unwrap();
        let mut prev = router.dist_to_target(p[0]);
        for &v in &p[1..] {
            let d = router.dist_to_target(v);
            assert!(d < prev, "distance increased: {prev} -> {d}");
            prev = d;
        }
    }

    #[test]
    fn long_links_counted() {
        // A scheme that always points at the target from anywhere.
        struct Teleport(NodeId);
        impl AugmentationScheme for Teleport {
            fn name(&self) -> String {
                "teleport".into()
            }
            fn sample_contact(
                &self,
                _g: &Graph,
                _u: NodeId,
                _rng: &mut dyn RngCore,
            ) -> Option<NodeId> {
                Some(self.0)
            }
        }
        let g = path(50);
        let router = GreedyRouter::new(&g, 49).unwrap();
        let mut rng = seeded_rng(5);
        let out = router.route(&Teleport(49), 0, &mut rng, default_step_cap(&g), false);
        assert!(out.reached);
        assert_eq!(out.steps, 1);
        assert_eq!(out.long_links_used, 1);
        // From node 48 the "long link" to 49 coincides with a local edge:
        // must not be counted as long.
        let out = router.route(&Teleport(49), 48, &mut rng, default_step_cap(&g), false);
        assert_eq!(out.steps, 1);
        assert_eq!(out.long_links_used, 0);
    }

    #[test]
    fn contact_ties_prefer_local() {
        // Contact at same distance as best local neighbour must lose.
        struct FixedContact(NodeId);
        impl AugmentationScheme for FixedContact {
            fn name(&self) -> String {
                "fixed".into()
            }
            fn sample_contact(
                &self,
                _g: &Graph,
                _u: NodeId,
                _rng: &mut dyn RngCore,
            ) -> Option<NodeId> {
                Some(self.0)
            }
        }
        // Cycle of 6, target 3. From node 0 both neighbours (1, 5) are at
        // distance 2; a contact at node 5 ties with local best 1 → local 1
        // wins (smallest id among closest locals).
        let g = GraphBuilder::from_edges(6, (0..6u32).map(|u| (u, (u + 1) % 6))).unwrap();
        let router = GreedyRouter::new(&g, 3).unwrap();
        assert_eq!(router.local_next(0), Some(1));
        assert_eq!(router.next_hop(0, Some(5)), Some(1));
        // Strictly better contact wins.
        assert_eq!(router.next_hop(0, Some(2)), Some(2));
        let mut rng = seeded_rng(6);
        let out = router.route(&FixedContact(5), 0, &mut rng, default_step_cap(&g), true);
        assert_eq!(out.path.unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn unreachable_target_reports_not_reached() {
        let g = GraphBuilder::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let router = GreedyRouter::new(&g, 3).unwrap();
        let mut rng = seeded_rng(7);
        let out = router.route(&NoAugmentation, 0, &mut rng, default_step_cap(&g), false);
        assert!(!out.reached);
        assert_eq!(out.steps, 0);
    }

    #[test]
    fn step_cap_respected() {
        let g = path(100);
        let router = GreedyRouter::new(&g, 99).unwrap();
        let mut rng = seeded_rng(8);
        let out = router.route(&NoAugmentation, 0, &mut rng, 10, false);
        assert!(!out.reached);
        assert_eq!(out.steps, 10);
    }

    #[test]
    fn from_row_routes_like_fresh_router() {
        let g = path(40);
        let fresh = GreedyRouter::new(&g, 39).unwrap();
        let row: Vec<u32> = (0..40).map(|v| fresh.dist_to_target(v)).collect();
        let borrowed = GreedyRouter::from_row(&g, 39, &row).unwrap();
        let out_f = fresh.route(
            &UniformScheme,
            0,
            &mut seeded_rng(11),
            default_step_cap(&g),
            true,
        );
        let out_b = borrowed.route(
            &UniformScheme,
            0,
            &mut seeded_rng(11),
            default_step_cap(&g),
            true,
        );
        assert_eq!(out_f, out_b);
        assert!(GreedyRouter::from_row(&g, 40, &row).is_err());
    }

    #[test]
    fn from_narrow_row_view_routes_identically() {
        use nav_graph::distance::DistRowBuf;
        let g = path(50);
        let fresh = GreedyRouter::new(&g, 49).unwrap();
        let wide: Vec<u32> = (0..50).map(|v| fresh.dist_to_target(v)).collect();
        let compact = DistRowBuf::from_wide(&wide);
        assert!(compact.is_narrow());
        let narrow = GreedyRouter::from_row_view(&g, 49, compact.view()).unwrap();
        assert_eq!(narrow.dist_to_target(0), 49);
        let out_f = fresh.route(
            &UniformScheme,
            0,
            &mut seeded_rng(21),
            default_step_cap(&g),
            true,
        );
        let out_n = narrow.route(
            &UniformScheme,
            0,
            &mut seeded_rng(21),
            default_step_cap(&g),
            true,
        );
        assert_eq!(out_f, out_n);
        // Narrow INFINITY decodes as unreachable.
        let g2 = GraphBuilder::from_edges(3, [(0, 1)]).unwrap();
        let row2 = DistRowBuf::from_wide(&[0, 1, INFINITY]);
        let r2 = GreedyRouter::from_row_view(&g2, 0, row2.view()).unwrap();
        assert_eq!(r2.dist_to_target(2), INFINITY);
    }

    #[test]
    #[should_panic(expected = "not a distance row")]
    fn from_row_rejects_wrong_target() {
        let g = path(4);
        let fresh = GreedyRouter::new(&g, 3).unwrap();
        let row: Vec<u32> = (0..4).map(|v| fresh.dist_to_target(v)).collect();
        let _ = GreedyRouter::from_row(&g, 0, &row);
    }

    #[test]
    fn route_with_scalar_sampler_is_bit_identical_to_route() {
        use crate::sampler::ScalarSampler;
        let g = path(80);
        let router = GreedyRouter::new(&g, 79).unwrap();
        let direct = router.route(&UniformScheme, 0, &mut seeded_rng(13), 81, true);
        let mut sampler = ScalarSampler::new(&UniformScheme);
        let via = router.route_with(&mut sampler, 0, &mut seeded_rng(13), 81, true);
        assert_eq!(direct, via);
    }

    #[test]
    fn route_with_ball_row_sampler_reaches_target() {
        use crate::ball::{BallRowSampler, BallScheme};
        let g = path(120);
        let scheme = BallScheme::new(&g);
        let router = GreedyRouter::new(&g, 119).unwrap();
        let mut sampler = BallRowSampler::new(scheme, usize::MAX);
        let mut rng = seeded_rng(14);
        for _ in 0..8 {
            let out = router.route_with(&mut sampler, 0, &mut rng, default_step_cap(&g), false);
            assert!(out.reached);
            assert!(out.steps <= 119);
        }
        // Later trials reuse the rows the first walk filled in.
        let stats = sampler.stats();
        assert!(stats.hits > 0, "{stats:?}");
    }

    #[test]
    fn zero_churn_fault_view_is_identity() {
        use crate::faulty::FailurePlan;
        let g = path(60);
        let plain = GreedyRouter::new(&g, 59).unwrap();
        let faulty = GreedyRouter::new(&g, 59)
            .unwrap()
            .with_fault(FailurePlan::new(7, 4, 8, 0.0), 2);
        let a = plain.route(
            &UniformScheme,
            0,
            &mut seeded_rng(31),
            default_step_cap(&g),
            true,
        );
        let b = faulty.route(
            &UniformScheme,
            0,
            &mut seeded_rng(31),
            default_step_cap(&g),
            true,
        );
        assert_eq!(a, b);
        assert_eq!(faulty.fault_counts(), (0, 0));
        assert_eq!(faulty.fault_epoch(), Some(2));
        assert_eq!(plain.fault_epoch(), None);
    }

    #[test]
    fn total_churn_strands_walks_but_spares_the_target() {
        use crate::faulty::FailurePlan;
        let g = path(10);
        let plan = FailurePlan::new(3, 2, 1, 1.0); // everyone down, always
        let router = GreedyRouter::new(&g, 9).unwrap().with_fault(plan, 0);
        // From 0 the only improving neighbour (1) is down: stuck at once.
        let out = router.route(
            &NoAugmentation,
            0,
            &mut seeded_rng(1),
            default_step_cap(&g),
            false,
        );
        assert!(!out.reached);
        assert_eq!(out.steps, 0);
        // From 8 the improving neighbour IS the target, which is exempt.
        let out = router.route(
            &NoAugmentation,
            8,
            &mut seeded_rng(1),
            default_step_cap(&g),
            false,
        );
        assert!(out.reached);
        assert_eq!(out.steps, 1);
    }

    #[test]
    fn down_contact_is_discarded_and_counted() {
        use crate::faulty::FailurePlan;
        // Teleporting contact to a node churn has taken down: the walk
        // must fall back to plain local greedy and count the drop.
        struct Teleport(NodeId);
        impl AugmentationScheme for Teleport {
            fn name(&self) -> String {
                "teleport".into()
            }
            fn sample_contact(
                &self,
                _g: &Graph,
                _u: NodeId,
                _rng: &mut dyn RngCore,
            ) -> Option<NodeId> {
                Some(self.0)
            }
        }
        let g = path(12);
        let plan = FailurePlan::new(17, 4096, 1, 0.1);
        // Find an epoch where node 8 is down but the local chain 1..=7 and
        // 9..=10 is fully live (the hash is deterministic, so this scan is
        // too; target 11 is exempt by construction).
        let epoch = (0..4096u64)
            .find(|&e| {
                plan.is_down(e, 8) && (1..=10u32).filter(|&v| v != 8).all(|v| !plan.is_down(e, v))
            })
            .expect("some epoch isolates node 8");
        let router = GreedyRouter::new(&g, 11).unwrap().with_fault(plan, epoch);
        let out = router.route(
            &Teleport(8),
            0,
            &mut seeded_rng(2),
            default_step_cap(&g),
            true,
        );
        // Contact 8 is discarded at 0..=6 (at 7 it ties→local anyway, but
        // the discard happens before comparison); the walk degrades to
        // pure local stepping... except it can never pass through 8!
        // 8 sits on the only path, so the walk must strand at 7.
        assert!(!out.reached);
        assert_eq!(out.path.unwrap(), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let (dropped, _) = router.fault_counts();
        assert!(dropped >= 7, "each visited node's contact 8 was down");
    }

    #[test]
    fn reroute_to_second_best_live_hop_is_counted() {
        use crate::faulty::FailurePlan;
        // Diamond 0-1, 0-2, 1-3, 2-3: from 0 both 1 and 2 improve, ties
        // break to 1. In an epoch where 1 is down and 2 live, the walk
        // must reroute through 2 and count exactly one rerouted hop.
        let g = GraphBuilder::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let plan = FailurePlan::new(23, 64, 1, 0.5);
        let epoch = (0..64u64)
            .find(|&e| plan.is_down(e, 1) && !plan.is_down(e, 2))
            .expect("some epoch downs 1 but not 2");
        let router = GreedyRouter::new(&g, 3).unwrap().with_fault(plan, epoch);
        let out = router.route(
            &NoAugmentation,
            0,
            &mut seeded_rng(3),
            default_step_cap(&g),
            true,
        );
        assert!(out.reached);
        assert_eq!(out.path.unwrap(), vec![0, 2, 3]);
        assert_eq!(router.fault_counts(), (0, 1));
    }

    #[test]
    fn fresh_oracle_convenience() {
        let g = path(10);
        let mut rng = seeded_rng(9);
        let out = route_with_fresh_oracle(&g, &NoAugmentation, 0, 9, &mut rng).unwrap();
        assert_eq!(out.steps, 9);
        assert!(route_with_fresh_oracle(&g, &NoAugmentation, 0, 10, &mut rng).is_err());
        assert!(route_with_fresh_oracle(&g, &NoAugmentation, 11, 0, &mut rng).is_err());
    }
}
