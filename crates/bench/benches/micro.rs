//! Micro-benchmarks of the substrates (BFS, ball sampling, scheme
//! sampling, decomposition construction, matrix row sampling).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nav_bench::workloads::Workload;
use nav_core::ball::BallScheme;
use nav_core::scheme::AugmentationScheme;
use nav_core::theorem2::Theorem2Scheme;
use nav_core::uniform::UniformScheme;
use nav_graph::bfs::Bfs;
use nav_par::rng::seeded_rng;

fn bfs_full(c: &mut Criterion) {
    let mut grp = c.benchmark_group("micro_bfs");
    grp.sample_size(20);
    for n in [1024usize, 16384] {
        let g = Workload::Grid2d.build(n, 1);
        let mut bfs = Bfs::new(g.num_nodes());
        grp.bench_function(BenchmarkId::new("grid-full", g.num_nodes()), |b| {
            b.iter(|| {
                bfs.run(&g, 0, u32::MAX, |_, _| true);
                bfs.dist((g.num_nodes() - 1) as u32)
            })
        });
    }
    grp.finish();
}

fn ball_sampling(c: &mut Criterion) {
    let mut grp = c.benchmark_group("micro_ball_sample");
    grp.sample_size(20);
    for n in [1024usize, 16384] {
        let g = Workload::Path.build(n, 1);
        let scheme = BallScheme::new(&g);
        let mut rng = seeded_rng(2);
        grp.bench_function(BenchmarkId::new("path", n), |b| {
            b.iter(|| scheme.sample_contact(&g, (n / 2) as u32, &mut rng))
        });
    }
    grp.finish();
}

fn scheme_sampling(c: &mut Criterion) {
    let mut grp = c.benchmark_group("micro_scheme_sample");
    grp.sample_size(20);
    let n = 16384usize;
    let g = Workload::Path.build(n, 1);
    let mut rng = seeded_rng(3);
    grp.bench_function("uniform", |b| {
        b.iter(|| UniformScheme.sample_contact(&g, 7, &mut rng))
    });
    let pd = nav_decomp::construct::path_graph_pd(n);
    let t2 = Theorem2Scheme::new(&g, &pd);
    grp.bench_function("theorem2", |b| {
        b.iter(|| t2.sample_contact(&g, 7, &mut rng))
    });
    grp.finish();
}

fn decompositions(c: &mut Criterion) {
    let mut grp = c.benchmark_group("micro_decomposition");
    grp.sample_size(10);
    let tree = Workload::RandomTree.build(16384, 4);
    grp.bench_function("tree-heavy-path-16k", |b| {
        b.iter(|| nav_decomp::tree_pd::tree_path_decomposition(&tree).num_bags())
    });
    let g = Workload::Grid2d.build(4096, 4);
    grp.bench_function("bfs-layers-grid-4k", |b| {
        b.iter(|| nav_decomp::construct::bfs_layers_pd(&g, 0).num_bags())
    });
    grp.finish();
}

fn prufer(c: &mut Criterion) {
    let mut grp = c.benchmark_group("micro_prufer");
    grp.sample_size(20);
    let n = 16384usize;
    let mut rng = seeded_rng(5);
    use rand::Rng;
    let seq: Vec<u32> = (0..n - 2).map(|_| rng.gen_range(0..n as u32)).collect();
    grp.bench_function("decode-16k", |b| {
        b.iter(|| {
            nav_graph::prufer::tree_from_prufer(n, &seq)
                .unwrap()
                .num_edges()
        })
    });
    grp.finish();
}

criterion_group!(
    micro,
    bfs_full,
    ball_sampling,
    scheme_sampling,
    decompositions,
    prufer
);
criterion_main!(micro);
