//! # nav-core — augmentation schemes and greedy routing
//!
//! The paper's contribution, implemented in full:
//!
//! | Paper | Module | What it is |
//! |---|---|---|
//! | Peleg's observation | [`uniform`] | the uniform universal scheme, `O(√n)` greedy diameter |
//! | Definition 1 | [`matrix`] | augmentation matrices + labeled application |
//! | Theorem 1 | [`theorem1`] | the adversarial path labeling forcing `Ω(√n)` on *any* name-independent matrix scheme |
//! | Theorem 2 | [`ancestry`], [`labeling`], [`theorem2`] | the `(M, L)` scheme: dyadic ancestor matrix `A`, uniform matrix `U`, `M = (A+U)/2`, and the max-level bag labeling — `O(min{ps·log²n, √n})` |
//! | Theorem 3 | [`theorem3`] | the label-budget-restricted variant exhibiting the `Ω(n^{(1−ε)/3})` degradation |
//! | Theorem 4 | [`ball`] | the a-posteriori ball scheme — `Õ(n^{1/3})` universal |
//! | baseline | [`kleinberg`] | distance-harmonic scheme (class-specific contrast) |
//!
//! Greedy routing ([`routing`]) is the oblivious process of the paper:
//! forward to the neighbour (local ∪ own long-range contact) closest to the
//! target in the **underlying** metric. Because each step strictly
//! decreases the distance to the target, no node repeats, and long-range
//! contacts can be sampled lazily at first visit — distributionally
//! identical to sampling all links upfront (deferred decisions), and the
//! basis of the whole engine's efficiency.
//!
//! Distance queries flow through the shared oracle layer ([`oracle`]): the
//! distinct targets of a workload are deduplicated and their distance rows
//! computed 64 at a time by bit-parallel multi-source BFS, then borrowed by
//! the routers — no per-pair BFS anywhere in the engine.
//!
//! Per-step contact draws flow through the sampler layer ([`sampler`]):
//! the scalar reference backend (bit-identical to calling
//! [`scheme::AugmentationScheme::sample_contact`] directly), the ball-row
//! cache ([`ball::BallRowSampler`] — lockstep trial rounds batching cache
//! misses 64 per MS-BFS pass), and pre-realized contact tables
//! ([`realization`]). The conformance harness ([`conformance`])
//! chi-squared-tests every backend against the scheme's declared
//! distribution.
//!
//! Two evaluation paths cross-check each other:
//! * Monte-Carlo trials ([`trial`], [`diameter`]) — parallel, seeded,
//!   reproducible;
//! * an exact expected-steps evaluator ([`exact`]) for any scheme that can
//!   enumerate its distribution ([`scheme::ExplicitScheme`]), processing
//!   nodes in increasing target-distance order.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ancestry;
pub mod ball;
pub mod conformance;
pub mod diameter;
pub mod exact;
pub mod faulty;
pub mod kleinberg;
pub mod labeling;
pub mod matrix;
pub mod oracle;
pub mod realization;
pub mod routing;
pub mod sampler;
pub mod scheme;
pub mod theorem1;
pub mod theorem2;
pub mod theorem3;
pub mod trial;
pub mod uniform;
pub mod workspace;

pub use ball::{BallRowSampler, BallScheme};
pub use faulty::{FailurePlan, FaultConfig, FaultySampler, FaultyScheme};
pub use kleinberg::KleinbergScheme;
pub use matrix::{AugmentationMatrix, MatrixScheme};
pub use oracle::{DistanceOracle, LandmarkOracle, LandmarkRouter, TargetDistanceCache};
pub use realization::Realization;
pub use routing::{GreedyRouter, RouteOutcome};
pub use sampler::{ContactSampler, SamplerMode, SamplerStats};
pub use scheme::{AugmentationScheme, ExplicitScheme};
pub use theorem2::{Theorem2Mode, Theorem2Scheme};
pub use uniform::{NoAugmentation, UniformScheme};
