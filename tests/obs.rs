//! Observability-layer contracts, across crates:
//!
//! 1. **Histogram conformance** (property-based): `nav_obs::LogHistogram`
//!    quantile estimates must stay within the histogram's declared
//!    relative-error bound of the *exact* order statistics
//!    (`nav_analysis::quantile::quantile_sorted`) for every sample shape
//!    we serve — uniform, zipf-skewed, and bimodal latency populations.
//! 2. **Trace-sampler placement invariance**: which queries get traced is
//!    a pure function of `(seed, lifetime query index)` — the traced set
//!    must not move when the same stream is served with different thread
//!    counts, different batch splits, or across a sharded front.

use navigability::analysis::quantile::quantile_sorted;
use navigability::core::uniform::UniformScheme;
use navigability::engine::{Engine, EngineConfig, Query, QueryBatch, ShardedEngine};
use navigability::obs::{LogHistogram, ObsConfig, QueryTrace, TraceSampler};
use navigability::prelude::*;
use proptest::prelude::*;

/// SplitMix64 — the tests' own deterministic sample generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Latency populations with the shapes a serving engine actually emits,
/// all within the histogram's exact-coverage domain `[1e-3, 1e4]` ms.
fn samples(shape: u8, seed: u64, n: usize) -> Vec<f64> {
    let mut s = seed.wrapping_mul(0x2545_f491_4f6c_dd1d) | 1;
    (0..n)
        .map(|_| match shape {
            // Uniform over three decades: 0.1..100 ms.
            0 => 0.1 + unit(&mut s) * 99.9,
            // Zipf-ish long tail: most batches fast, a heavy p99.
            1 => {
                let u = unit(&mut s).max(1e-12);
                (0.05 / u.powf(0.8)).min(9.0e3)
            }
            // Bimodal: cache-hit mode around 0.2 ms, cold mode around 40 ms.
            _ => {
                if unit(&mut s) < 0.8 {
                    0.1 + unit(&mut s) * 0.2
                } else {
                    20.0 + unit(&mut s) * 40.0
                }
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn histogram_quantiles_conform_to_exact_order_statistics(
        shape in 0u8..3,
        seed in 0u64..10_000,
        n in 1usize..4000,
    ) {
        let samples = samples(shape, seed, n);
        let mut h = LogHistogram::new();
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples;
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        // The histogram's nearest-rank estimate must bracket the exact
        // type-7 order statistics up to the declared per-decade relative
        // error (γ): est ∈ [sorted[floor(h)]/γ, sorted[ceil(h)]·γ].
        let gamma = LogHistogram::error_factor() * 1.0001;
        for q in [0.5, 0.9, 0.99] {
            let est = h.quantile(q).expect("non-empty");
            let exact = quantile_sorted(&sorted, q);
            let pos = q * (sorted.len() - 1) as f64;
            let lo = sorted[pos.floor() as usize] / gamma;
            let hi = sorted[pos.ceil() as usize] * gamma;
            prop_assert!(
                exact >= lo && exact <= hi,
                "bracket must contain the exact quantile"
            );
            prop_assert!(
                est >= lo && est <= hi,
                "q={} est={} exact={} outside [{}, {}] (n={}, shape={})",
                q, est, exact, lo, hi, sorted.len(), shape
            );
        }
        // The exact scalars ride along unbucketed.
        prop_assert_eq!(h.count(), sorted.len() as u64);
        let exact_sum: f64 = sorted.iter().sum();
        prop_assert!((h.sum() - exact_sum).abs() <= 1e-9 * exact_sum.max(1.0));
        prop_assert_eq!(h.min(), sorted.first().copied());
        prop_assert_eq!(h.max(), sorted.last().copied());
    }

    #[test]
    fn merged_histograms_equal_bulk_recording(
        seed in 0u64..10_000,
        split in 1usize..500,
    ) {
        // merge() must be exactly associative with record(): a sharded
        // front's merged digest equals the single-engine digest.
        let samples = samples(1, seed, 500);
        let split = split.min(samples.len());
        let mut whole = LogHistogram::new();
        let (mut a, mut b) = (LogHistogram::new(), LogHistogram::new());
        for (i, &v) in samples.iter().enumerate() {
            whole.record(v);
            if i < split { a.record(v) } else { b.record(v) }
        }
        a.merge(&b);
        prop_assert_eq!(a.bucket_counts(), whole.bucket_counts());
        prop_assert_eq!(a.count(), whole.count());
        prop_assert_eq!(a.min(), whole.min());
        prop_assert_eq!(a.max(), whole.max());
        prop_assert_eq!(a.quantile(0.99), whole.quantile(0.99));
    }

    #[test]
    fn trace_sampler_is_pure_in_seed_and_index(
        seed in 0u64..10_000,
        every in 1u64..64,
    ) {
        // The sampled set depends on (seed, index) only — recomputing
        // from a fresh sampler object with the same seed agrees, and the
        // hit rate lands near 1/every (it is a hash, not a stride).
        let s1 = TraceSampler::new(seed, every);
        let s2 = TraceSampler::new(seed, every);
        let hits: Vec<u64> = (0..4096).filter(|&i| s1.hits(i)).collect();
        let again: Vec<u64> = (0..4096).filter(|&i| s2.hits(i)).collect();
        prop_assert_eq!(&hits, &again);
        if every == 1 {
            prop_assert_eq!(hits.len(), 4096);
        } else {
            let expect = 4096.0 / every as f64;
            prop_assert!(
                (hits.len() as f64) < 4.0 * expect + 32.0,
                "{} hits for every={}", hits.len(), every
            );
        }
    }
}

/// The engine serving `queries` in `chunk`-sized batches with `threads`
/// workers and 1-in-`trace_every` tracing; returns the recorded traces.
fn traced(
    g: &Graph,
    queries: &[Query],
    chunk: usize,
    threads: usize,
    trace_every: u64,
) -> Vec<QueryTrace> {
    let mut e = Engine::new(
        g.clone(),
        Box::new(UniformScheme),
        EngineConfig {
            seed: 0xb0b,
            threads,
            cache_bytes: 1 << 20,
            obs: ObsConfig {
                stages: true,
                trace_every,
                trace_capacity: queries.len() + 1,
            },
            ..EngineConfig::default()
        },
    );
    for c in queries.chunks(chunk) {
        e.serve(&QueryBatch {
            queries: c.to_vec(),
        })
        .expect("valid queries");
    }
    e.obs_snapshot().traces
}

/// The traced (index, s, t) triples — the placement-invariant part of a
/// trace (timings and per-batch cache outcomes legitimately vary).
fn keys(traces: &[QueryTrace]) -> Vec<(u64, u32, u32)> {
    let mut k: Vec<_> = traces.iter().map(|t| (t.index, t.s, t.t)).collect();
    k.sort_unstable();
    k
}

fn query_stream(g: &Graph, count: usize) -> Vec<Query> {
    let n = g.num_nodes() as u64;
    let mut s = 0x5eed_cafe_u64;
    (0..count)
        .map(|_| Query {
            s: (splitmix64(&mut s) % n) as u32,
            t: (splitmix64(&mut s) % n) as u32,
            trials: 2,
        })
        .collect()
}

#[test]
fn traced_query_set_is_invariant_across_threads_and_batch_splits() {
    let g = navigability::gen::grid::grid2d(12, 12).expect("grid");
    let queries = query_stream(&g, 160);
    let baseline = keys(&traced(&g, &queries, 7, 1, 4));
    assert!(
        !baseline.is_empty(),
        "1-in-4 sampling over 160 queries must trace something"
    );
    // Same stream, different thread counts: identical traced set.
    for threads in [2, 4] {
        assert_eq!(
            baseline,
            keys(&traced(&g, &queries, 7, threads, 4)),
            "traced set moved at {threads} threads"
        );
    }
    // Same stream, different batch splits: identical traced set.
    for chunk in [1, 13, 160] {
        assert_eq!(
            baseline,
            keys(&traced(&g, &queries, chunk, 2, 4)),
            "traced set moved at chunk {chunk}"
        );
    }
}

#[test]
fn traced_query_set_is_invariant_across_shard_counts() {
    let g = navigability::gen::grid::grid2d(10, 10).expect("grid");
    let queries = query_stream(&g, 120);
    let single = keys(&traced(&g, &queries, 11, 2, 4));
    for shards in [2, 3] {
        let mut front = ShardedEngine::new(
            g.clone(),
            || Box::new(UniformScheme),
            EngineConfig {
                seed: 0xb0b,
                threads: 2,
                cache_bytes: 1 << 20,
                obs: ObsConfig {
                    stages: true,
                    trace_every: 4,
                    trace_capacity: queries.len() + 1,
                },
                ..EngineConfig::default()
            },
            shards,
        );
        for c in queries.chunks(11) {
            front
                .serve(&QueryBatch {
                    queries: c.to_vec(),
                })
                .expect("valid queries");
        }
        let snap = front.obs_snapshot();
        assert_eq!(
            single,
            keys(&snap.traces),
            "traced set moved behind a {shards}-shard front"
        );
        // Shard labels must be the routing function, not noise.
        for t in &snap.traces {
            assert_eq!(u64::from(t.shard), u64::from(t.t) % shards as u64);
        }
    }
}

#[test]
fn histogram_memory_is_bounded_however_long_the_engine_runs() {
    // The whole point of the bounded digest: one million records later,
    // the struct is the same size and the quantiles still conform.
    let mut h = LogHistogram::new();
    let mut s = 9u64;
    for _ in 0..1_000_000 {
        h.record(0.01 + unit(&mut s) * 500.0);
    }
    assert_eq!(h.count(), 1_000_000);
    assert_eq!(
        std::mem::size_of_val(&h),
        std::mem::size_of::<LogHistogram>()
    );
    let p50 = h.quantile(0.5).expect("non-empty");
    // Uniform over [0.01, 500.01]: the median must land near 250 within
    // the declared relative error (plus sampling noise).
    assert!((200.0..300.0).contains(&p50), "p50 = {p50}");
}
