//! The bounds-checked little-endian read cursor every decoder in this
//! crate shares — the same totality discipline as the wire codec: a read
//! past the end is a [`StoreError::Truncated`], never a panic.

use crate::StoreError;

pub(crate) struct Cur<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Cur { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub(crate) fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated(what));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub(crate) fn u8(&mut self, what: &'static str) -> Result<u8, StoreError> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn u16(&mut self, what: &'static str) -> Result<u16, StoreError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub(crate) fn u32(&mut self, what: &'static str) -> Result<u32, StoreError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self, what: &'static str) -> Result<u64, StoreError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Floats travel as raw bits, so every value (including NaN payloads)
    /// round-trips exactly.
    pub(crate) fn f64(&mut self, what: &'static str) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Asserts the cursor consumed its slice exactly — trailing bytes in
    /// a section mean the writer and reader disagree about the format.
    pub(crate) fn done(&self, what: &'static str) -> Result<(), StoreError> {
        if self.remaining() != 0 {
            return Err(StoreError::Malformed(what));
        }
        Ok(())
    }
}
