//! **Theorem 2**: the `(M, L)` matrix-based universal scheme.
//!
//! `M = (A + U)/2` where `A` is the dyadic ancestor matrix (long jumps
//! along the bag hierarchy of a path-decomposition) and `U` is the uniform
//! matrix (the name-independent safety net); `L` is the max-level bag
//! labeling ([`crate::labeling::Labeling::from_path_decomposition`]).
//! Greedy diameter: `O(min{ps(G)·log²n, √n})`.
//!
//! The scheme here samples `M` *implicitly* (a coin for the half, then a
//! uniform ancestor slot or a uniform node) — identical in distribution to
//! materialising the `n × n` matrix, but `O(log n)` memory. A
//! materialised variant is exposed for cross-checking in tests.

use crate::ancestry::{ancestors_within, nu};
use crate::labeling::Labeling;
use crate::matrix::{AugmentationMatrix, MatrixScheme};
use crate::scheme::{AugmentationScheme, ExplicitScheme};
use nav_decomp::decomposition::PathDecomposition;
use nav_graph::{Graph, NodeId};
use rand::{Rng, RngCore};

/// Which halves of `M = (A + U)/2` are active — the ablation axis of the
/// paper's central design choice ("the two matrices A and U can be run in
/// parallel while preserving their respective good behavior").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Theorem2Mode {
    /// The paper's scheme: `M = (A + U)/2`.
    Combined,
    /// Ancestor matrix only (`M = A`): hierarchy jumps without the
    /// uniform safety net — loses the `O(√n)` fallback on large-pathshape
    /// graphs.
    AncestorOnly,
    /// Uniform only (`M = U`): exactly the uniform scheme — loses the
    /// polylog behaviour on small-pathshape graphs.
    UniformOnly,
}

/// The Theorem-2 scheme `(M, L)` for a specific graph + path-decomposition.
#[derive(Clone, Debug)]
pub struct Theorem2Scheme {
    labeling: Labeling,
    /// Denominator of the ancestor matrix: `D = ν(k)` where `k` is the
    /// label-space size (#bags).
    denom: u32,
    mode: Theorem2Mode,
    shape_hint: Option<usize>,
}

impl Theorem2Scheme {
    /// Builds the scheme from a path-decomposition of `g`.
    pub fn new(g: &Graph, pd: &PathDecomposition) -> Self {
        Theorem2Scheme::with_mode(g, pd, Theorem2Mode::Combined)
    }

    /// Builds the scheme with an explicit [`Theorem2Mode`] (ablations).
    pub fn with_mode(g: &Graph, pd: &PathDecomposition, mode: Theorem2Mode) -> Self {
        let labeling = Labeling::from_path_decomposition(pd, g.num_nodes());
        let denom = nu(labeling.num_labels().max(1));
        Theorem2Scheme {
            labeling,
            denom,
            mode,
            shape_hint: None,
        }
    }

    /// Builds the scheme using the decomposition **portfolio** of
    /// `nav-decomp` (the deployment default for unknown graphs).
    pub fn from_portfolio(g: &Graph) -> Self {
        let result = nav_decomp::best_path_decomposition(g, &Default::default());
        let mut s = Theorem2Scheme::new(g, &result.pd);
        s.shape_hint = Some(result.shape);
        s
    }

    /// The labeling `L`.
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }

    /// Shape of the decomposition used, when known (portfolio path).
    pub fn shape_hint(&self) -> Option<usize> {
        self.shape_hint
    }

    /// The active [`Theorem2Mode`].
    pub fn mode(&self) -> Theorem2Mode {
        self.mode
    }

    /// Materialises the equivalent explicit `(M, L)` matrix scheme —
    /// `O(k log k + k·n)` memory; for tests and small graphs only.
    /// Only defined for the combined mode.
    pub fn materialize(&self, g: &Graph) -> MatrixScheme {
        assert_eq!(
            self.mode,
            Theorem2Mode::Combined,
            "materialize() is the combined matrix M = (A+U)/2"
        );
        self.materialize_inner(g)
    }

    fn materialize_inner(&self, g: &Graph) -> MatrixScheme {
        let k = self.labeling.num_labels();
        let a = ancestor_matrix_with_denom(k, self.denom);
        let u = AugmentationMatrix::uniform_over_nodes(k, g.num_nodes(), &self.labeling);
        let m = AugmentationMatrix::average(&a, &u).expect("same size");
        MatrixScheme::new("theorem2-materialized", m, self.labeling.clone())
    }
}

/// The ancestor matrix with an explicit denominator (the implicit sampler
/// draws a slot in `0..denom`, so the materialised matrix must match).
fn ancestor_matrix_with_denom(k: usize, denom: u32) -> AugmentationMatrix {
    let d = denom.max(1) as f64;
    let rows = (1..=k as u32)
        .map(|i| {
            ancestors_within(i as u64, k as u64)
                .into_iter()
                .map(|j| (j as u32, 1.0 / d))
                .collect()
        })
        .collect();
    AugmentationMatrix::from_rows(k, rows).expect("ancestor matrix is valid")
}

impl AugmentationMatrix {
    /// The matrix representation of "pick a node uniformly at random" under
    /// a labeling: `p_{i,j} = |bucket(j)| / n` — so that label-then-node
    /// sampling reproduces the node-uniform distribution exactly.
    pub fn uniform_over_nodes(k: usize, n: usize, labeling: &Labeling) -> AugmentationMatrix {
        let rows = (0..k)
            .map(|_| {
                (1..=k as u32)
                    .filter(|&j| !labeling.bucket(j).is_empty())
                    .map(|j| (j, labeling.bucket(j).len() as f64 / n as f64))
                    .collect()
            })
            .collect();
        AugmentationMatrix::from_rows(k, rows).expect("node-uniform matrix is valid")
    }
}

impl Theorem2Scheme {
    /// Samples the A half (a uniform ancestor slot of `L(u)`; slots past
    /// the in-range ancestor list are the sub-stochastic leftover).
    fn sample_ancestor_half(&self, rng: &mut dyn RngCore, u: NodeId) -> Option<NodeId> {
        let i = self.labeling.label(u) as u64;
        let k = self.labeling.num_labels() as u64;
        let slot = rng.gen_range(0..self.denom);
        let level = crate::ancestry::level(i);
        let pos = level.checked_add(slot)?;
        if pos >= 63 || (1u64 << pos) > k {
            return None;
        }
        let j = crate::ancestry::ancestor(i, slot)?;
        if j > k {
            return None;
        }
        let bucket = self.labeling.bucket(j as u32);
        if bucket.is_empty() {
            return None;
        }
        Some(bucket[rng.gen_range(0..bucket.len())])
    }
}

impl AugmentationScheme for Theorem2Scheme {
    fn name(&self) -> String {
        match self.mode {
            Theorem2Mode::Combined => "theorem2(M,L)".into(),
            Theorem2Mode::AncestorOnly => "theorem2(A-only)".into(),
            Theorem2Mode::UniformOnly => "theorem2(U-only)".into(),
        }
    }

    fn sample_contact(&self, g: &Graph, u: NodeId, rng: &mut dyn RngCore) -> Option<NodeId> {
        let use_uniform = match self.mode {
            Theorem2Mode::Combined => rng.gen::<bool>(),
            Theorem2Mode::AncestorOnly => false,
            Theorem2Mode::UniformOnly => true,
        };
        if use_uniform {
            // U half: a uniformly random node — name-independent, keeps
            // the O(√n) fallback of the uniform scheme.
            Some(rng.gen_range(0..g.num_nodes() as NodeId))
        } else {
            self.sample_ancestor_half(rng, u)
        }
    }
}

impl ExplicitScheme for Theorem2Scheme {
    fn contact_distribution(&self, g: &Graph, u: NodeId) -> Vec<(NodeId, f64)> {
        let n = g.num_nodes();
        let (w_uniform, w_ancestor) = match self.mode {
            Theorem2Mode::Combined => (0.5, 0.5),
            Theorem2Mode::AncestorOnly => (0.0, 1.0),
            Theorem2Mode::UniformOnly => (1.0, 0.0),
        };
        let mut prob = vec![0.0f64; n];
        if w_uniform > 0.0 {
            let pu = w_uniform / n as f64;
            for p in prob.iter_mut() {
                *p += pu;
            }
        }
        if w_ancestor > 0.0 {
            let i = self.labeling.label(u) as u64;
            let k = self.labeling.num_labels() as u64;
            let pa = w_ancestor / self.denom as f64;
            for j in ancestors_within(i, k) {
                let bucket = self.labeling.bucket(j as u32);
                if bucket.is_empty() {
                    continue;
                }
                let share = pa / bucket.len() as f64;
                for &v in bucket {
                    prob[v as usize] += share;
                }
            }
        }
        prob.into_iter()
            .enumerate()
            .filter(|&(_, p)| p > 0.0)
            .map(|(v, p)| (v as NodeId, p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance::{check_scheme, ConformanceConfig};

    use nav_decomp::construct::path_graph_pd;
    use nav_graph::GraphBuilder;
    use nav_par::rng::seeded_rng;

    fn path(n: usize) -> Graph {
        GraphBuilder::from_edges(n, (0..n as NodeId - 1).map(|u| (u, u + 1))).unwrap()
    }

    #[test]
    fn sampler_matches_explicit_distribution() {
        let g = path(9);
        let scheme = Theorem2Scheme::new(&g, &path_graph_pd(9));
        check_scheme(
            &g,
            &scheme,
            &[0, 4, 8],
            &ConformanceConfig::with_samples(80_000),
        );
    }

    #[test]
    fn sampler_matches_materialized_matrix() {
        let g = path(12);
        let scheme = Theorem2Scheme::new(&g, &path_graph_pd(12));
        let mat = scheme.materialize(&g);
        for u in 0..12u32 {
            let d1 = scheme.contact_distribution(&g, u);
            let d2 = mat.contact_distribution(&g, u);
            let to_map = |d: Vec<(NodeId, f64)>| {
                let mut m = vec![0.0; 12];
                for (v, p) in d {
                    m[v as usize] += p;
                }
                m
            };
            let (m1, m2) = (to_map(d1), to_map(d2));
            for v in 0..12 {
                assert!(
                    (m1[v] - m2[v]).abs() < 1e-9,
                    "u={u} v={v}: {} vs {}",
                    m1[v],
                    m2[v]
                );
            }
        }
    }

    #[test]
    fn distribution_sums_at_most_one() {
        let g = path(33);
        let scheme = Theorem2Scheme::new(&g, &path_graph_pd(33));
        for u in 0..33u32 {
            let total: f64 = scheme
                .contact_distribution(&g, u)
                .iter()
                .map(|&(_, p)| p)
                .sum();
            assert!(total <= 1.0 + 1e-9, "u={u}: {total}");
            assert!(total >= 0.5 - 1e-9, "u={u}: U half missing? {total}");
        }
    }

    #[test]
    fn ancestor_half_reaches_hierarchy() {
        // On the canonical path decomposition the root label (the highest
        // power of two ≤ b) should be reachable from everywhere via A.
        let n = 17usize;
        let g = path(n);
        let scheme = Theorem2Scheme::new(&g, &path_graph_pd(n));
        let b = n - 1; // bags
        let root_label = 1u64 << (nu(b) - 1); // 2^{ν−1} ≤ b
        for u in 0..n as u32 {
            let i = scheme.labeling.label(u) as u64;
            let ancs = ancestors_within(i, b as u64);
            assert!(
                ancs.contains(&root_label),
                "label {i} misses root {root_label}: {ancs:?}"
            );
        }
    }

    #[test]
    fn from_portfolio_on_tree() {
        let g = GraphBuilder::from_edges(31, (1..31).map(|i| (((i - 1) / 2) as u32, i as u32)))
            .unwrap();
        let scheme = Theorem2Scheme::from_portfolio(&g);
        assert!(scheme.shape_hint().unwrap() <= 6);
        let mut rng = seeded_rng(23);
        // Smoke: sampling works and stays in range.
        for u in 0..31u32 {
            if let Some(v) = scheme.sample_contact(&g, u, &mut rng) {
                assert!((v as usize) < 31);
            }
        }
    }

    #[test]
    fn uniform_only_mode_is_uniform_scheme() {
        let g = path(10);
        let s = Theorem2Scheme::with_mode(&g, &path_graph_pd(10), Theorem2Mode::UniformOnly);
        let dist = s.contact_distribution(&g, 3);
        assert_eq!(dist.len(), 10);
        for (_, p) in dist {
            assert!((p - 0.1).abs() < 1e-12);
        }
        assert_eq!(s.name(), "theorem2(U-only)");
    }

    #[test]
    fn ancestor_only_mode_has_no_uniform_floor() {
        let g = path(17);
        let s = Theorem2Scheme::with_mode(&g, &path_graph_pd(17), Theorem2Mode::AncestorOnly);
        // Support is only the ancestor buckets — far smaller than n.
        let dist = s.contact_distribution(&g, 0);
        assert!(dist.len() < 17, "support {} too large", dist.len());
        let total: f64 = dist.iter().map(|&(_, p)| p).sum();
        assert!(total <= 1.0 + 1e-9);
        assert_eq!(s.name(), "theorem2(A-only)");
        check_scheme(&g, &s, &[5], &ConformanceConfig::with_samples(60_000));
    }

    #[test]
    fn combined_is_half_of_each_mode() {
        let g = path(13);
        let pd = path_graph_pd(13);
        let full = Theorem2Scheme::with_mode(&g, &pd, Theorem2Mode::Combined);
        let a = Theorem2Scheme::with_mode(&g, &pd, Theorem2Mode::AncestorOnly);
        let u = Theorem2Scheme::with_mode(&g, &pd, Theorem2Mode::UniformOnly);
        let to_vec = |s: &Theorem2Scheme, node: u32| {
            let mut v = vec![0.0f64; 13];
            for (x, p) in s.contact_distribution(&g, node) {
                v[x as usize] = p;
            }
            v
        };
        for node in 0..13u32 {
            let (f, av, uv) = (to_vec(&full, node), to_vec(&a, node), to_vec(&u, node));
            for i in 0..13 {
                assert!(
                    (f[i] - (av[i] + uv[i]) / 2.0).abs() < 1e-12,
                    "node {node} slot {i}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "combined matrix")]
    fn materialize_rejects_ablated_modes() {
        let g = path(8);
        let s = Theorem2Scheme::with_mode(&g, &path_graph_pd(8), Theorem2Mode::AncestorOnly);
        let _ = s.materialize(&g);
    }

    #[test]
    fn works_with_shared_labels() {
        // Trivial decomposition: every node labeled 1.
        let g = path(6);
        let pd = nav_decomp::decomposition::PathDecomposition::trivial(6);
        let scheme = Theorem2Scheme::new(&g, &pd);
        check_scheme(&g, &scheme, &[2], &ConformanceConfig::with_samples(40_000));
    }
}
