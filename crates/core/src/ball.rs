//! **Theorem 4**: the Õ(n^{1/3}) a-posteriori ball scheme.
//!
//! Every node `u` draws a scale `k` uniformly in `{1, …, ⌈log₂ n⌉}` and
//! then its long-range contact uniformly in the ball `B(u, 2^k)`. In
//! closed form, with `r(v) = min{ k : v ∈ B(u, 2^k) }`:
//!
//! ```text
//! φ_u(v) = (1/⌈log n⌉) · Σ_{k = max(r(v),1)}^{⌈log n⌉}  1 / |B(u, 2^k)|
//! ```
//!
//! This is the paper's scheme that overcomes the √n barrier: greedy
//! routing in `(G, φ)` takes `Õ(n^{1/3})` expected steps on **every**
//! n-node graph (five-phase analysis: enter the set `B` of the `n^{2/3}`
//! closest nodes to the target, leave its boundary, grow the ball scale,
//! shrink it onto the target, walk the rest).

use crate::realization::Realization;
use crate::scheme::{AugmentationScheme, ExplicitScheme};
use crate::workspace::with_bfs;
use nav_graph::ball::rank_of_distance;
use nav_graph::msbfs::{with_msbfs, LANES};
use nav_graph::{Graph, NodeId, INFINITY};
use nav_par::rng::task_rng;
use rand::{Rng, RngCore};

/// The Theorem-4 ball scheme, bound to a graph size (`K = ⌈log₂ n⌉`).
#[derive(Clone, Copy, Debug)]
pub struct BallScheme {
    /// Number of scales `K`.
    k_max: u32,
}

impl BallScheme {
    /// Creates the scheme for graph `g` (`K = ⌈log₂ n⌉`, min 1).
    pub fn new(g: &Graph) -> Self {
        BallScheme {
            k_max: ceil_log2(g.num_nodes()).max(1),
        }
    }

    /// The number of scales `K`.
    pub fn scales(&self) -> u32 {
        self.k_max
    }

    /// The ball radius of scale `k` (`2^k`, saturating).
    fn radius(k: u32) -> u32 {
        if k >= 31 {
            u32::MAX
        } else {
            1u32 << k
        }
    }

    /// Realizes one long-range draw for **every** node, batched: centres
    /// are packed [`LANES`] (= 64) per bit-parallel MS-BFS pass and the
    /// passes fanned out to `threads` `nav-par` workers — replacing the
    /// one scalar truncated BFS per node that [`Realization::sample`]
    /// would issue through [`AugmentationScheme::sample_contact`].
    ///
    /// Node `u`'s draw is a pure function of `(seed, u)` (via
    /// [`task_rng`]), so the result is identical for every thread count
    /// and batch split. Each draw has exactly the scheme's distribution —
    /// a uniform scale `k`, then a uniform element of `B(u, 2^k)` selected
    /// by index against the batch's distance rows — but the realization is
    /// *not* stream-compatible with the sequential single-RNG
    /// [`Realization::sample`], which consumes one shared stream in node
    /// order.
    pub fn realize_batched(&self, g: &Graph, seed: u64, threads: usize) -> Realization {
        let n = g.num_nodes();
        let batches: Vec<Vec<NodeId>> = (0..n.div_ceil(LANES))
            .map(|c| {
                let lo = c * LANES;
                let hi = (lo + LANES).min(n);
                (lo as NodeId..hi as NodeId).collect()
            })
            .collect();
        let per_batch: Vec<Vec<Option<NodeId>>> =
            nav_par::parallel_map(batches.len(), threads, |b| {
                let centres = &batches[b];
                with_msbfs(n, |ms| {
                    let rows = ms.distances(g, centres);
                    centres
                        .iter()
                        .enumerate()
                        .map(|(lane, &u)| {
                            let row = &rows[lane * n..(lane + 1) * n];
                            let mut rng = task_rng(seed, u as u64);
                            let k = rng.gen_range(1..=self.k_max);
                            let radius = Self::radius(k);
                            // Uniform over B(u, 2^k) by index: count the
                            // members (u itself is always one, d = 0),
                            // draw a rank, take the rank-th member in
                            // ascending node-id order.
                            let in_ball = |d: u32| d != INFINITY && d <= radius;
                            let count = row.iter().filter(|&&d| in_ball(d)).count() as u64;
                            let pick = rng.gen_range(0..count);
                            let chosen = row
                                .iter()
                                .enumerate()
                                .filter(|&(_, &d)| in_ball(d))
                                .nth(pick as usize)
                                .map(|(v, _)| v as NodeId)
                                .expect("ball contains at least the centre");
                            Some(chosen)
                        })
                        .collect()
                })
            });
        Realization::from_contacts(per_batch.into_iter().flatten().collect())
    }
}

/// `⌈log₂ n⌉` (0 for n = 1).
fn ceil_log2(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

impl AugmentationScheme for BallScheme {
    fn name(&self) -> String {
        "ball(thm4)".into()
    }

    fn sample_contact(&self, g: &Graph, u: NodeId, rng: &mut dyn RngCore) -> Option<NodeId> {
        let k = rng.gen_range(1..=self.k_max);
        let radius = Self::radius(k);
        // Uniform element of B(u, 2^k) via reservoir sampling over a
        // truncated BFS — O(|B|) time, no ball materialisation. Stops as
        // soon as the whole graph is covered (dense cores at large radii).
        let n = g.num_nodes() as u64;
        with_bfs(g.num_nodes(), |bfs| {
            let mut chosen = u;
            let mut seen = 0u64;
            bfs.run(g, u, radius, |v, _| {
                seen += 1;
                // Reservoir: keep v with probability 1/seen.
                if rng.gen_range(0..seen) == 0 {
                    chosen = v;
                }
                seen < n
            });
            Some(chosen)
        })
    }
}

impl ExplicitScheme for BallScheme {
    fn contact_distribution(&self, g: &Graph, u: NodeId) -> Vec<(NodeId, f64)> {
        // One BFS collects distances; dyadic prefix sums give |B(u, 2^k)|.
        let n = g.num_nodes();
        let kk = self.k_max as usize;
        let mut dist_of: Vec<(NodeId, u32)> = Vec::new();
        with_bfs(n, |bfs| {
            let radius = if self.k_max >= 31 {
                u32::MAX
            } else {
                1u32 << self.k_max
            };
            bfs.run(g, u, radius, |v, d| {
                dist_of.push((v, d));
                true
            });
        });
        // |B(u, 2^k)| for k = 1..=K.
        let mut ball_sizes = vec![0usize; kk + 1];
        for &(_, d) in &dist_of {
            let r = rank_of_distance(d).max(1) as usize;
            if r <= kk {
                ball_sizes[r] += 1;
            }
        }
        for k in 1..=kk {
            ball_sizes[k] += if k > 1 { ball_sizes[k - 1] } else { 0 };
        }
        // suffix[r] = Σ_{k=r}^{K} 1/|B_k|.
        let mut suffix = vec![0.0f64; kk + 2];
        for k in (1..=kk).rev() {
            suffix[k] = suffix[k + 1]
                + if ball_sizes[k] > 0 {
                    1.0 / ball_sizes[k] as f64
                } else {
                    0.0
                };
        }
        let inv_scales = 1.0 / self.k_max as f64;
        dist_of
            .into_iter()
            .filter_map(|(v, d)| {
                let r = (rank_of_distance(d).max(1) as usize).min(kk + 1);
                let p = inv_scales * suffix[r];
                (p > 0.0).then_some((v, p))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::assert_sampling_matches;
    use nav_graph::GraphBuilder;
    use nav_par::rng::seeded_rng;

    fn path(n: usize) -> Graph {
        GraphBuilder::from_edges(n, (0..n as NodeId - 1).map(|u| (u, u + 1))).unwrap()
    }

    #[test]
    fn ceil_log2_table() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn distribution_sums_to_one() {
        // Balls always contain u, so the scheme is fully stochastic.
        for n in [2usize, 5, 16, 33] {
            let g = path(n);
            let scheme = BallScheme::new(&g);
            for u in [0u32, (n / 2) as u32, (n - 1) as u32] {
                let total: f64 = scheme
                    .contact_distribution(&g, u)
                    .iter()
                    .map(|&(_, p)| p)
                    .sum();
                assert!((total - 1.0).abs() < 1e-9, "n={n} u={u}: {total}");
            }
        }
    }

    #[test]
    fn sampler_matches_distribution_on_path() {
        let g = path(17);
        let scheme = BallScheme::new(&g);
        let mut rng = seeded_rng(31);
        for u in [0u32, 8, 16] {
            assert_sampling_matches(&scheme, &g, u, 120_000, 0.012, &mut rng);
        }
    }

    #[test]
    fn sampler_matches_distribution_on_star() {
        let g = GraphBuilder::from_edges(9, (1..9).map(|v| (0, v as NodeId))).unwrap();
        let scheme = BallScheme::new(&g);
        let mut rng = seeded_rng(32);
        assert_sampling_matches(&scheme, &g, 0, 60_000, 0.015, &mut rng);
        assert_sampling_matches(&scheme, &g, 3, 60_000, 0.015, &mut rng);
    }

    #[test]
    fn closer_nodes_never_less_likely() {
        // φ_u is non-increasing in distance (suffix sums of shrinking
        // terms) — the small-world monotonicity.
        let g = path(65);
        let scheme = BallScheme::new(&g);
        let dist = scheme.contact_distribution(&g, 0);
        let mut by_node = vec![0.0f64; 65];
        for (v, p) in dist {
            by_node[v as usize] = p;
        }
        for v in 1..64usize {
            assert!(
                by_node[v] >= by_node[v + 1] - 1e-12,
                "monotonicity broke at {v}: {} < {}",
                by_node[v],
                by_node[v + 1]
            );
        }
    }

    #[test]
    fn paper_formula_spot_check() {
        // Path of 8, u = 0, K = 3. Balls: |B(0,2)| = 3, |B(0,4)| = 5,
        // |B(0,8)| = 8. Node at distance 1 (rank ≤ 1): p = (1/3)(1/3+1/5+1/8).
        let g = path(8);
        let scheme = BallScheme::new(&g);
        assert_eq!(scheme.scales(), 3);
        let dist = scheme.contact_distribution(&g, 0);
        let p1 = dist.iter().find(|&&(v, _)| v == 1).unwrap().1;
        let expect = (1.0 / 3.0) * (1.0 / 3.0 + 1.0 / 5.0 + 1.0 / 8.0);
        assert!((p1 - expect).abs() < 1e-12, "{p1} vs {expect}");
        // Node at distance 3 (rank 2): p = (1/3)(1/5 + 1/8).
        let p3 = dist.iter().find(|&&(v, _)| v == 3).unwrap().1;
        let expect3 = (1.0 / 3.0) * (1.0 / 5.0 + 1.0 / 8.0);
        assert!((p3 - expect3).abs() < 1e-12);
        // Node at distance 8 is outside every ball? dist 7, rank 3:
        // p = (1/3)(1/8).
        let p7 = dist.iter().find(|&&(v, _)| v == 7).unwrap().1;
        assert!((p7 - (1.0 / 3.0) * (1.0 / 8.0)).abs() < 1e-12);
    }

    #[test]
    fn batched_realization_is_thread_invariant_and_deterministic() {
        let g = path(150); // spans three 64-lane batches
        let scheme = BallScheme::new(&g);
        let r1 = scheme.realize_batched(&g, 9, 1);
        let r4 = scheme.realize_batched(&g, 9, 4);
        assert_eq!(r1, r4, "thread count must not change the realization");
        assert_ne!(r1, scheme.realize_batched(&g, 10, 1));
        assert_eq!(r1.num_links(), 150); // the scheme is fully stochastic
    }

    #[test]
    fn batched_realization_matches_distribution() {
        // Empirical contact frequencies of node u across many batched
        // realizations must match the closed-form φ_u.
        let g = path(17);
        let scheme = BallScheme::new(&g);
        let u = 8u32;
        let samples = 60_000usize;
        let mut counts = [0usize; 17];
        for s in 0..samples {
            let real = scheme.realize_batched(&g, s as u64, 1);
            counts[real.contact(u).unwrap() as usize] += 1;
        }
        let exact = scheme.contact_distribution(&g, u);
        let mut expected = [0.0f64; 17];
        for (v, p) in exact {
            expected[v as usize] = p;
        }
        for v in 0..17 {
            let emp = counts[v] as f64 / samples as f64;
            assert!(
                (emp - expected[v]).abs() < 0.012,
                "node {u}→{v}: empirical {emp:.4} vs exact {:.4}",
                expected[v]
            );
        }
    }

    #[test]
    fn batched_realization_stays_inside_largest_ball() {
        let g = path(40);
        let scheme = BallScheme::new(&g);
        let real = scheme.realize_batched(&g, 3, 2);
        let max_radius = 1u64 << scheme.scales();
        for u in 0..40u32 {
            let v = real.contact(u).unwrap();
            let d = (v as i64 - u as i64).unsigned_abs();
            assert!(d <= max_radius, "u={u} v={v}");
        }
    }

    #[test]
    fn tiny_graph_sampling() {
        let g = path(2);
        let scheme = BallScheme::new(&g);
        let mut rng = seeded_rng(33);
        for u in 0..2u32 {
            let v = scheme.sample_contact(&g, u, &mut rng).unwrap();
            assert!(v < 2);
        }
    }
}
