//! Lifetime service metrics of an [`crate::Engine`].

use nav_analysis::latency::LatencySummary;
use nav_core::sampler::SamplerStats;

/// Counters and latency samples accumulated across every batch an engine
/// has served.
#[derive(Clone, Debug, Default)]
pub struct EngineMetrics {
    /// Queries answered.
    pub queries: u64,
    /// Batches served.
    pub batches: u64,
    /// Routing trials executed.
    pub trials: u64,
    /// Distinct targets served warm (row already resident).
    pub warm_targets: u64,
    /// Distinct targets computed cold (MS-BFS this batch).
    pub cold_targets: u64,
    /// Total service wall-clock, milliseconds.
    pub total_ms: f64,
    /// Per-step sampler counters summed over every query's worker (all
    /// zero under the scalar backend). `row_bytes` is the total transient
    /// ball-row payload the workers allocated — each individual worker
    /// stayed under the engine's byte budget.
    pub sampler: SamplerStats,
    /// Long-range contacts suppressed by fault injection: the i.i.d.
    /// drop coin plus contacts whose node was down in the query's churn
    /// epoch. 0 when [`crate::EngineConfig::fault`] is off.
    pub dropped_links: u64,
    /// Hops where the fault-free greedy winner was down and routing fell
    /// back to a different live hop.
    pub rerouted_hops: u64,
    /// Churn-epoch changes observed by the row cache (each one purges the
    /// resident rows — stale-row invalidation).
    pub epoch_flips: u64,
    /// One wall-clock sample per served batch, milliseconds.
    batch_ms: Vec<f64>,
}

impl EngineMetrics {
    /// Records one served batch.
    pub fn record_batch(
        &mut self,
        queries: usize,
        trials: u64,
        warm: usize,
        cold: usize,
        elapsed_ms: f64,
    ) {
        self.queries += queries as u64;
        self.batches += 1;
        self.trials += trials;
        self.warm_targets += warm as u64;
        self.cold_targets += cold as u64;
        self.total_ms += elapsed_ms;
        self.batch_ms.push(elapsed_ms);
    }

    /// Folds one batch's summed sampler counters into the lifetime
    /// totals.
    pub fn record_sampler(&mut self, stats: &SamplerStats) {
        self.sampler.merge(stats);
    }

    /// Folds one batch's fault tallies into the lifetime totals.
    pub fn record_fault(&mut self, dropped_links: u64, rerouted_hops: u64, epoch_flips: u64) {
        self.dropped_links += dropped_links;
        self.rerouted_hops += rerouted_hops;
        self.epoch_flips += epoch_flips;
    }

    /// The per-batch latency samples, in service order (milliseconds).
    pub fn batch_latencies_ms(&self) -> &[f64] {
        &self.batch_ms
    }

    /// Tail-latency digest of the per-batch service times (`None` before
    /// the first batch).
    pub fn latency(&self) -> Option<LatencySummary> {
        LatencySummary::from_samples(&self.batch_ms)
    }

    /// Overall throughput in queries per second (0 before any work).
    pub fn throughput_qps(&self) -> f64 {
        if self.total_ms <= 0.0 {
            0.0
        } else {
            self.queries as f64 / (self.total_ms / 1e3)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_digests() {
        let mut m = EngineMetrics::default();
        assert!(m.latency().is_none());
        assert_eq!(m.throughput_qps(), 0.0);
        m.record_batch(100, 400, 3, 7, 50.0);
        m.record_batch(100, 400, 10, 0, 150.0);
        m.record_fault(5, 2, 1);
        m.record_fault(3, 1, 0);
        assert_eq!(m.dropped_links, 8);
        assert_eq!(m.rerouted_hops, 3);
        assert_eq!(m.epoch_flips, 1);
        assert_eq!(m.queries, 200);
        assert_eq!(m.batches, 2);
        assert_eq!(m.trials, 800);
        assert_eq!(m.warm_targets, 13);
        assert_eq!(m.cold_targets, 7);
        assert_eq!(m.batch_latencies_ms(), &[50.0, 150.0]);
        let lat = m.latency().unwrap();
        assert_eq!(lat.count, 2);
        assert_eq!(lat.max, 150.0);
        // 200 queries in 0.2 s → 1000 qps.
        assert!((m.throughput_qps() - 1000.0).abs() < 1e-9);
    }
}
