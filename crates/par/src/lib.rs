//! # nav-par — deterministic parallel substrate
//!
//! Monte-Carlo estimation of greedy diameters runs thousands of independent
//! routing trials; this crate provides the small amount of parallel
//! machinery the reproduction needs, built directly on `crossbeam` scoped
//! threads (no global thread pool, no work-stealing deque — an atomic
//! work counter is enough for the embarrassingly parallel workloads here):
//!
//! * [`rng`] — splittable, fast, reproducible random number generation:
//!   a [`rng::SplitMix64`] stream seeder and a
//!   [Xoshiro256++](`rng::Xoshiro256pp`) generator implementing the `rand`
//!   traits, so every parallel task derives an independent, deterministic
//!   generator from `(seed, task_index)`;
//! * [`map`] — `parallel_map` / `parallel_for` over an index space with
//!   dynamic (atomic-counter) load balancing, plus a deterministic
//!   reduction helper.
//!
//! The design rule throughout: **parallel results are bit-identical to
//! sequential results** for the same seed. Tests enforce it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod host;
pub mod map;
pub mod rng;

pub use host::HostMeta;
pub use map::{parallel_chunks_mut, parallel_for, parallel_map, parallel_map_reduce};
pub use rng::{seeded_rng, task_rng, SplitMix64, Xoshiro256pp};

/// Default number of worker threads: the machine's available parallelism,
/// capped at 16 (the workloads here stop scaling far before that).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}
