//! Batched per-step contact sampling.
//!
//! The routing engine draws one long-range contact per *visited node*
//! (deferred decisions). Schemes whose draw is cheap (a matrix row lookup,
//! a fixed realization) don't care how that draw is made — but the
//! a-posteriori [`crate::ball::BallScheme`] pays one truncated BFS per
//! draw, which dominates every ball-scheme experiment. This module
//! abstracts the draw behind a [`ContactSampler`] so the per-step cost can
//! be paid in bulk instead of per visit, the same discipline that batched
//! realizations 64 centres per MS-BFS pass:
//!
//! * [`ScalarSampler`] — backend (a), the reference path: defers every
//!   draw to [`AugmentationScheme::sample_contact`], consuming the
//!   identical RNG stream, so trial results are **bit-identical** to the
//!   pre-sampler engine.
//! * [`crate::ball::BallRowSampler`] — backend (b), the ball-row cache:
//!   computes truncated-BFS ball rows 64 at a time by bit-parallel MS-BFS
//!   on first visit and serves every later draw for a cached node in
//!   `O(1)`, distribution-identical to the scalar draw.
//! * pre-realized — backend (c): a [`crate::realization::Realization`]
//!   (e.g. from [`crate::ball::BallScheme::realize_batched`]) *is* an
//!   [`AugmentationScheme`], so serving it through [`ScalarSampler`] costs
//!   one table lookup per draw.
//!
//! Workers pick a backend through [`SamplerMode`] + [`sampler_for`]:
//! [`SamplerMode::Batched`] asks the scheme for its batched sampler
//! ([`AugmentationScheme::batched_sampler`]) and falls back to the scalar
//! path when the scheme has none, so the knob is safe on every scheme.

use crate::scheme::AugmentationScheme;
use nav_graph::msbfs::LaneWidth;
use nav_graph::{Graph, NodeId};
use rand::RngCore;

/// Which per-step sampling backend the trial/serving engines build for
/// their workers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SamplerMode {
    /// One [`AugmentationScheme::sample_contact`] call per visited node —
    /// the reference path, bit-identical to the pre-sampler engine.
    #[default]
    Scalar,
    /// The scheme's batched sampler when it has one (the ball-row cache
    /// for [`crate::ball::BallScheme`]); scalar fallback otherwise.
    Batched,
}

impl SamplerMode {
    /// Parses a CLI flag value (`scalar` | `batched`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "scalar" => Some(SamplerMode::Scalar),
            "batched" => Some(SamplerMode::Batched),
            _ => None,
        }
    }

    /// The CLI/JSON label of the mode.
    pub fn label(&self) -> &'static str {
        match self {
            SamplerMode::Scalar => "scalar",
            SamplerMode::Batched => "batched",
        }
    }
}

/// Counters a sampler accumulates while serving one worker. Stateless
/// samplers report all zeros.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SamplerStats {
    /// Draws served from cached sampler state (a resident ball row).
    pub hits: u64,
    /// Draws for a node with no cached state yet.
    pub misses: u64,
    /// Ball rows computed and cached.
    pub rows: u64,
    /// MS-BFS passes issued to fill rows (≤ 64 rows each).
    pub passes: u64,
    /// Payload bytes of cached rows at the end of the worker's run.
    pub row_bytes: u64,
    /// Draws answered by the scalar scheme because the byte budget was
    /// exhausted (correct, just uncached).
    pub fallbacks: u64,
}

impl SamplerStats {
    /// Accumulates another worker's counters into this one (`row_bytes`
    /// adds up too: it then means total bytes across workers).
    pub fn merge(&mut self, other: &SamplerStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.rows += other.rows;
        self.passes += other.passes;
        self.row_bytes += other.row_bytes;
        self.fallbacks += other.fallbacks;
    }
}

/// A per-worker stateful source of long-range contact draws, driven by
/// [`crate::routing::GreedyRouter::route_with`] instead of calling
/// [`AugmentationScheme::sample_contact`] directly.
///
/// A sampler may cache deterministic state (ball rows) across draws, but
/// each `sample` must still be an independent draw from the scheme's
/// `φ_u` — caching may change *when randomness is consumed*, never the
/// distribution of the contact.
pub trait ContactSampler {
    /// Display name (used in metrics and bench JSON).
    fn name(&self) -> String;

    /// Draws the long-range contact of `u` (`None` = the sub-stochastic
    /// leftover mass, exactly as in
    /// [`AugmentationScheme::sample_contact`]).
    fn sample(&mut self, g: &Graph, u: NodeId, rng: &mut dyn RngCore) -> Option<NodeId>;

    /// Announces nodes about to be sampled, letting a batching backend
    /// compute their state in bulk (64 ball rows per MS-BFS pass) before
    /// the per-node draws land. Stateless samplers ignore it.
    fn prepare(&mut self, g: &Graph, nodes: &[NodeId]) {
        let _ = (g, nodes);
    }

    /// `true` when the sampler profits from the trial engine running a
    /// pair's trials in lockstep rounds (all concurrent walks announce
    /// their current nodes through [`ContactSampler::prepare`], so misses
    /// batch with no wasted lanes). The scalar backend keeps the
    /// sequential per-trial order — and with it bit-identity to the
    /// pre-sampler engine.
    fn wants_lockstep(&self) -> bool {
        false
    }

    /// The sampler's counters (zeros for stateless samplers).
    fn stats(&self) -> SamplerStats {
        SamplerStats::default()
    }
}

impl<T: ContactSampler + ?Sized> ContactSampler for Box<T> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn sample(&mut self, g: &Graph, u: NodeId, rng: &mut dyn RngCore) -> Option<NodeId> {
        (**self).sample(g, u, rng)
    }

    fn prepare(&mut self, g: &Graph, nodes: &[NodeId]) {
        (**self).prepare(g, nodes);
    }

    fn wants_lockstep(&self) -> bool {
        (**self).wants_lockstep()
    }

    fn stats(&self) -> SamplerStats {
        (**self).stats()
    }
}

/// Backend (a): every draw goes straight to
/// [`AugmentationScheme::sample_contact`]. The RNG stream is untouched,
/// so routing through this sampler is bit-identical to routing on the
/// scheme directly.
pub struct ScalarSampler<'s, S: AugmentationScheme + ?Sized> {
    scheme: &'s S,
}

impl<'s, S: AugmentationScheme + ?Sized> ScalarSampler<'s, S> {
    /// Wraps a scheme borrow.
    pub fn new(scheme: &'s S) -> Self {
        ScalarSampler { scheme }
    }
}

impl<S: AugmentationScheme + ?Sized> ContactSampler for ScalarSampler<'_, S> {
    fn name(&self) -> String {
        self.scheme.name()
    }

    fn sample(&mut self, g: &Graph, u: NodeId, rng: &mut dyn RngCore) -> Option<NodeId> {
        self.scheme.sample_contact(g, u, rng)
    }
}

/// Builds the sampler `mode` selects for `scheme`, for one routing
/// worker. `byte_cap` bounds the bytes of cached sampler state
/// (`usize::MAX` = unbounded); a sampler past its cap keeps answering
/// correctly through the scalar path.
pub fn sampler_for<'s, S: AugmentationScheme + ?Sized>(
    scheme: &'s S,
    g: &Graph,
    mode: SamplerMode,
    byte_cap: usize,
) -> Box<dyn ContactSampler + 's> {
    sampler_for_w(scheme, g, mode, byte_cap, LaneWidth::W64)
}

/// [`sampler_for`] at an explicit MS-BFS word-block width: a batching
/// backend fills `width.lanes()` rows per pass instead of 64. The width
/// never changes the per-draw distribution — only how many misses one
/// pass amortises.
pub fn sampler_for_w<'s, S: AugmentationScheme + ?Sized>(
    scheme: &'s S,
    g: &Graph,
    mode: SamplerMode,
    byte_cap: usize,
    width: LaneWidth,
) -> Box<dyn ContactSampler + 's> {
    match mode {
        SamplerMode::Scalar => Box::new(ScalarSampler::new(scheme)),
        SamplerMode::Batched => scheme
            .batched_sampler_w(g, byte_cap, width)
            .unwrap_or_else(|| Box::new(ScalarSampler::new(scheme))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::{NoAugmentation, UniformScheme};
    use nav_graph::GraphBuilder;
    use nav_par::rng::seeded_rng;

    #[test]
    fn mode_parse_and_label_roundtrip() {
        for mode in [SamplerMode::Scalar, SamplerMode::Batched] {
            assert_eq!(SamplerMode::parse(mode.label()), Some(mode));
        }
        assert_eq!(SamplerMode::parse("bogus"), None);
        assert_eq!(SamplerMode::default(), SamplerMode::Scalar);
    }

    #[test]
    fn scalar_sampler_consumes_identical_stream() {
        let g = GraphBuilder::from_edges(6, (0..5u32).map(|u| (u, u + 1))).unwrap();
        let mut direct_rng = seeded_rng(9);
        let direct: Vec<_> = (0..20)
            .map(|i| UniformScheme.sample_contact(&g, i % 6, &mut direct_rng))
            .collect();
        let mut sampler = ScalarSampler::new(&UniformScheme);
        let mut rng = seeded_rng(9);
        let sampled: Vec<_> = (0..20)
            .map(|i| sampler.sample(&g, i % 6, &mut rng))
            .collect();
        assert_eq!(direct, sampled);
        assert_eq!(sampler.name(), "uniform");
        assert_eq!(sampler.stats(), SamplerStats::default());
    }

    #[test]
    fn batched_mode_falls_back_to_scalar_for_plain_schemes() {
        let g = GraphBuilder::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut s = sampler_for(&NoAugmentation, &g, SamplerMode::Batched, usize::MAX);
        let mut rng = seeded_rng(1);
        assert_eq!(s.sample(&g, 0, &mut rng), None);
        assert_eq!(s.name(), "none");
    }

    #[test]
    fn stats_merge_adds_fieldwise() {
        let mut a = SamplerStats {
            hits: 1,
            misses: 2,
            rows: 3,
            passes: 4,
            row_bytes: 5,
            fallbacks: 6,
        };
        a.merge(&a.clone());
        assert_eq!(
            a,
            SamplerStats {
                hits: 2,
                misses: 4,
                rows: 6,
                passes: 8,
                row_bytes: 10,
                fallbacks: 12,
            }
        );
    }
}
