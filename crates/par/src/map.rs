//! Parallel map/for over an index space with dynamic load balancing.
//!
//! The workloads (independent routing trials, independent BFS runs) are
//! embarrassingly parallel but individual items can have wildly different
//! costs (a routing trial on a path takes `Θ(√n)` or `Θ(log³ n)` steps
//! depending on the scheme), so static chunking would leave threads idle.
//! A shared atomic cursor hands out small chunks dynamically.
//!
//! Determinism: item `i`'s result always lands in slot `i`, and callers
//! derive per-item RNGs from `(seed, i)` via [`crate::rng::task_rng`], so
//! outputs do not depend on scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Chunk size for the atomic work counter. Small enough to balance
/// heavy-tailed items, large enough to keep contention negligible.
const CHUNK: usize = 8;

/// Applies `f` to every index in `0..n` on `threads` workers and collects
/// results in index order.
///
/// The results buffer is pre-split into `CHUNK`-sized disjoint cells
/// (`chunks_mut`), and workers write `f(i)` straight into the cell they
/// claim from the atomic cursor — no per-worker side buffers, no final
/// scatter copy. The crate forbids `unsafe`, so each cell sits behind its
/// own `Mutex`; a cell is claimed by exactly one worker, making every lock
/// uncontended (one atomic op per `CHUNK` items, not a shared-lock
/// bottleneck).
///
/// With `threads <= 1` runs inline on the caller thread (no spawn cost),
/// which also gives a trivially deterministic reference implementation.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    let mut results = vec![T::default(); n];
    parallel_chunks_mut(&mut results, CHUNK, threads, |c, cell| {
        let base = c * CHUNK;
        for (j, slot) in cell.iter_mut().enumerate() {
            *slot = f(base + j);
        }
    });
    results
}

/// Splits `buf` into `chunk_size`-sized consecutive cells and runs
/// `f(chunk_index, cell)` once per cell on `threads` workers (cells are
/// claimed from an atomic cursor; each lock is uncontended by
/// construction). The in-place sibling of [`parallel_map`] for callers
/// that own one large output buffer — e.g. an all-pairs matrix filled 64
/// rows at a time — avoiding per-chunk result vectors and the final
/// gather copy entirely.
///
/// With `threads <= 1` the cells are processed inline, in order.
///
/// # Panics
/// Panics if `chunk_size == 0` while `buf` is non-empty.
pub fn parallel_chunks_mut<T, F>(buf: &mut [T], chunk_size: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if buf.is_empty() {
        return;
    }
    assert!(chunk_size > 0, "chunk_size must be positive");
    // Single cell ⇒ strictly serial work: run it inline rather than
    // paying a scope + worker spawn to block on one chunk.
    if threads <= 1 || buf.len() <= chunk_size {
        for (c, chunk) in buf.chunks_mut(chunk_size).enumerate() {
            f(c, chunk);
        }
        return;
    }
    let cells: Vec<Mutex<&mut [T]>> = buf.chunks_mut(chunk_size).map(Mutex::new).collect();
    let cursor = AtomicUsize::new(0);
    let workers = threads.min(cells.len());
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            let cursor = &cursor;
            let cells = &cells;
            let f = &f;
            scope.spawn(move |_| loop {
                let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                if chunk >= cells.len() {
                    break;
                }
                let mut cell = cells[chunk].lock().expect("cell poisoned");
                f(chunk, &mut cell);
            });
        }
    })
    .expect("thread scope failed");
}

/// Runs `f` for every index in `0..n` in parallel for side effects only
/// (e.g. filling caller-provided per-task output files).
pub fn parallel_for<F>(n: usize, threads: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if threads <= 1 || n <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    let workers = threads.min(n);
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move |_| loop {
                let start = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + CHUNK).min(n);
                for i in start..end {
                    f(i);
                }
            });
        }
    })
    .expect("thread scope failed");
}

/// Parallel map followed by a **sequential, in-order** fold — the reduction
/// order is `0, 1, …, n-1` regardless of thread count, so floating-point
/// accumulations stay bit-identical to the sequential run.
pub fn parallel_map_reduce<T, A, F, R>(n: usize, threads: usize, f: F, init: A, reduce: R) -> A
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
    R: FnMut(A, T) -> A,
{
    let mapped = parallel_map(n, threads, f);
    mapped.into_iter().fold(init, reduce)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::task_rng;
    use rand::Rng;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_identity_in_order() {
        let out = parallel_map(100, 4, |i| i * i);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * i);
        }
    }

    #[test]
    fn map_empty_and_single() {
        assert!(parallel_map(0, 4, |i| i).is_empty());
        assert_eq!(parallel_map(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn parallel_equals_sequential_with_task_rng() {
        let work = |i: usize| {
            let mut rng = task_rng(123, i as u64);
            rng.gen_range(0..1_000_000u64)
        };
        let seq = parallel_map(257, 1, work);
        let par = parallel_map(257, 8, work);
        assert_eq!(seq, par);
    }

    #[test]
    fn chunks_mut_fills_every_slot() {
        for threads in [1, 4] {
            let mut buf = vec![0usize; 103]; // deliberately not a multiple of 10
            parallel_chunks_mut(&mut buf, 10, threads, |c, chunk| {
                for (j, slot) in chunk.iter_mut().enumerate() {
                    *slot = c * 10 + j + 1;
                }
            });
            for (i, &v) in buf.iter().enumerate() {
                assert_eq!(v, i + 1, "threads={threads} index {i}");
            }
        }
    }

    #[test]
    fn chunks_mut_empty_buffer_is_noop() {
        let mut buf: Vec<u32> = Vec::new();
        parallel_chunks_mut(&mut buf, 0, 4, |_, _| panic!("no cells"));
        parallel_chunks_mut(&mut buf, 8, 4, |_, _| panic!("no cells"));
    }

    #[test]
    fn for_visits_every_index_once() {
        let n = 1000;
        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, 6, |i| {
            counters[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "index {i}");
        }
    }

    #[test]
    fn map_reduce_order_is_stable() {
        // Build a string to make the fold order observable.
        let s1 = parallel_map_reduce(10, 1, |i| i.to_string(), String::new(), |acc, x| acc + &x);
        let s8 = parallel_map_reduce(10, 8, |i| i.to_string(), String::new(), |acc, x| acc + &x);
        assert_eq!(s1, "0123456789");
        assert_eq!(s1, s8);
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(3, 64, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn uneven_item_costs_balance() {
        // Heavy tail: item 0 does far more work; just assert correctness.
        let out = parallel_map(64, 4, |i| {
            let spins = if i == 0 { 100_000 } else { 10 };
            let mut acc = 0u64;
            for k in 0..spins {
                acc = acc.wrapping_add(k ^ i as u64);
            }
            acc
        });
        assert_eq!(out.len(), 64);
    }
}
