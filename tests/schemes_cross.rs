//! Cross-scheme contract tests, driven by the reusable conformance
//! harness (`nav_core::conformance`): every explicit scheme's sampler
//! matches its declared distribution under a pooled chi-squared test, is
//! deterministic under a fixed seed, never emits an undeclared
//! self-contact — and Monte-Carlo matches the exact evaluator.
//!
//! Run with `--nocapture` to see the per-node chi-squared summaries (CI
//! does, so a failing table prints in full).

use nav_par::rng::task_rng;
use navigability::core::conformance::{check_sampler, check_scheme, ConformanceConfig};
use navigability::core::exact::exact_expected_steps;
use navigability::core::matrix::{AugmentationMatrix, MatrixScheme};
use navigability::core::realization::Realization;
use navigability::core::routing::{default_step_cap, GreedyRouter};
use navigability::core::scheme::ExplicitScheme;
use navigability::core::theorem3::RestrictedLabelScheme;
use navigability::core::uniform::NoAugmentation;
use navigability::core::BallRowSampler;
use navigability::gen::{classic, grid};
use navigability::prelude::*;

/// Every `AugmentationScheme` impl with an explicit distribution — the
/// matrix, hierarchy (theorem 2/3), ball, baseline, and realization
/// backends all face the same harness.
fn schemes_for(g: &navigability::graph::Graph) -> Vec<Box<dyn ExplicitScheme>> {
    let n = g.num_nodes();
    let pd = navigability::decomp::best_path_decomposition(g, &Default::default()).pd;
    let mut rng = seeded_rng(0xF1A7);
    vec![
        Box::new(NoAugmentation),
        Box::new(UniformScheme),
        Box::new(BallScheme::new(g)),
        Box::new(KleinbergScheme::new(1.0)),
        Box::new(KleinbergScheme::new(2.0)),
        Box::new(Theorem2Scheme::new(g, &pd)),
        Box::new(RestrictedLabelScheme::new(g, &pd, (n / 4).max(1))),
        Box::new(MatrixScheme::name_independent(
            "matrix-ancestor",
            AugmentationMatrix::ancestor(n),
            n,
        )),
        Box::new(MatrixScheme::name_independent(
            "matrix-harmonic",
            AugmentationMatrix::label_harmonic(n),
            n,
        )),
        Box::new(Realization::sample(g, &UniformScheme, &mut rng)),
    ]
}

#[test]
fn every_scheme_conforms_on_path() {
    let g = classic::path(15).expect("path");
    let cfg = ConformanceConfig::with_samples(30_000);
    for scheme in schemes_for(&g) {
        check_scheme(&g, scheme.as_ref(), &[0, 7, 14], &cfg);
    }
}

#[test]
fn every_scheme_conforms_on_grid() {
    let g = grid::grid2d(4, 4).expect("grid");
    let cfg = ConformanceConfig::with_samples(30_000);
    for scheme in schemes_for(&g) {
        check_scheme(&g, scheme.as_ref(), &[5], &cfg);
    }
}

#[test]
fn ball_row_sampler_conforms_to_ball_distribution() {
    // Backend (b) of the sampler layer faces the same chi-squared gate as
    // the scalar sampler: cached rows must not bend any φ_u.
    for g in [
        classic::path(15).expect("path"),
        grid::grid2d(4, 4).expect("grid"),
        classic::cycle(21).expect("cycle"),
    ] {
        let scheme = BallScheme::new(&g);
        let mut sampler = BallRowSampler::new(scheme, usize::MAX);
        let nodes: Vec<NodeId> = vec![0, (g.num_nodes() / 2) as NodeId];
        check_sampler(
            &g,
            &scheme,
            &mut sampler,
            &nodes,
            &ConformanceConfig::with_samples(30_000),
        );
    }
}

#[test]
fn realized_ball_scheme_conforms_as_point_masses() {
    // Backend (c): a batched realization is itself an explicit scheme
    // (point mass per node) and must pass the same harness.
    let g = classic::path(33).expect("path");
    let real = BallScheme::new(&g).realize_batched(&g, 11, 2);
    // Point masses need no resolution.
    let cfg = ConformanceConfig::with_samples(2_000);
    check_scheme(&g, &real, &[0, 16, 32], &cfg);
}

#[test]
fn distributions_are_substochastic_everywhere() {
    let g = classic::cycle(21).expect("cycle");
    for scheme in schemes_for(&g) {
        for u in g.nodes() {
            let dist = scheme.contact_distribution(&g, u);
            let total: f64 = dist.iter().map(|&(_, p)| p).sum();
            assert!(
                total <= 1.0 + 1e-9,
                "{}: node {u} sums to {total}",
                scheme.name()
            );
            let mut nodes: Vec<_> = dist.iter().map(|&(v, _)| v).collect();
            nodes.sort_unstable();
            nodes.dedup();
            assert_eq!(nodes.len(), dist.len(), "{}: duplicates", scheme.name());
        }
    }
}

#[test]
fn monte_carlo_matches_exact_for_every_scheme() {
    let g = classic::path(20).expect("path");
    let target: NodeId = 19;
    let source: NodeId = 0;
    let trials = 4000;
    for scheme in schemes_for(&g) {
        let exact =
            exact_expected_steps(&g, scheme.as_ref(), target).expect("connected")[source as usize];
        let router = GreedyRouter::new(&g, target).expect("router");
        let mut sum = 0.0;
        for t in 0..trials {
            let mut rng = task_rng(31, t as u64);
            sum += router
                .route(
                    scheme.as_ref(),
                    source,
                    &mut rng,
                    default_step_cap(&g),
                    false,
                )
                .steps as f64;
        }
        let mc = sum / trials as f64;
        assert!(
            (mc - exact).abs() < 0.35,
            "{}: MC {mc:.3} vs exact {exact:.3}",
            scheme.name()
        );
    }
}

#[test]
fn scheme_names_are_distinct() {
    let g = classic::path(10).expect("path");
    let names: Vec<String> = schemes_for(&g).iter().map(|s| s.name()).collect();
    let mut dedup = names.clone();
    dedup.sort();
    dedup.dedup();
    assert_eq!(dedup.len(), names.len(), "{names:?}");
}
