//! **Theorem 4**: the Õ(n^{1/3}) a-posteriori ball scheme.
//!
//! Every node `u` draws a scale `k` uniformly in `{1, …, ⌈log₂ n⌉}` and
//! then its long-range contact uniformly in the ball `B(u, 2^k)`. In
//! closed form, with `r(v) = min{ k : v ∈ B(u, 2^k) }`:
//!
//! ```text
//! φ_u(v) = (1/⌈log n⌉) · Σ_{k = max(r(v),1)}^{⌈log n⌉}  1 / |B(u, 2^k)|
//! ```
//!
//! This is the paper's scheme that overcomes the √n barrier: greedy
//! routing in `(G, φ)` takes `Õ(n^{1/3})` expected steps on **every**
//! n-node graph (five-phase analysis: enter the set `B` of the `n^{2/3}`
//! closest nodes to the target, leave its boundary, grow the ball scale,
//! shrink it onto the target, walk the rest).

use crate::realization::Realization;
use crate::sampler::{ContactSampler, SamplerStats};
use crate::scheme::{AugmentationScheme, ExplicitScheme};
use crate::workspace::with_bfs;
use nav_graph::ball::rank_of_distance;
use nav_graph::msbfs::{LaneWidth, MsBfsW, MsBfsWorkspace};
use nav_graph::{Graph, NodeId, INFINITY};
use nav_par::rng::task_rng;
use rand::{Rng, RngCore};
use std::collections::{HashMap, HashSet};

/// The Theorem-4 ball scheme, bound to a graph size (`K = ⌈log₂ n⌉`).
#[derive(Clone, Copy, Debug)]
pub struct BallScheme {
    /// Number of scales `K`.
    k_max: u32,
}

impl BallScheme {
    /// Creates the scheme for graph `g` (`K = ⌈log₂ n⌉`, min 1).
    pub fn new(g: &Graph) -> Self {
        BallScheme {
            k_max: ceil_log2(g.num_nodes()).max(1),
        }
    }

    /// The number of scales `K`.
    pub fn scales(&self) -> u32 {
        self.k_max
    }

    /// The ball radius of scale `k` (`2^k`, saturating).
    fn radius(k: u32) -> u32 {
        if k >= 31 {
            u32::MAX
        } else {
            1u32 << k
        }
    }

    /// Realizes one long-range draw for **every** node, batched: centres
    /// are packed [`LANES`](nav_graph::msbfs::LANES) (= 64) per
    /// bit-parallel MS-BFS pass and the
    /// passes fanned out to `threads` `nav-par` workers — replacing the
    /// one scalar truncated BFS per node that [`Realization::sample`]
    /// would issue through [`AugmentationScheme::sample_contact`].
    ///
    /// Node `u`'s draw is a pure function of `(seed, u)` (via
    /// [`task_rng`]), so the result is identical for every thread count
    /// and batch split. Each draw has exactly the scheme's distribution —
    /// a uniform scale `k`, then a uniform element of `B(u, 2^k)` selected
    /// by index against the batch's distance rows — but the realization is
    /// *not* stream-compatible with the sequential single-RNG
    /// [`Realization::sample`], which consumes one shared stream in node
    /// order.
    pub fn realize_batched(&self, g: &Graph, seed: u64, threads: usize) -> Realization {
        self.realize_batched_w(g, seed, threads, LaneWidth::W64)
    }

    /// [`realize_batched`] at an explicit MS-BFS word-block width:
    /// `width.lanes()` centres per pass instead of 64. Draws select ball
    /// members **by index** against exact distance rows with a per-node
    /// RNG, so the realization is bit-identical at every width (and to
    /// [`realize_batched`]) — the width only changes how many rows one
    /// pass amortises.
    ///
    /// [`realize_batched`]: BallScheme::realize_batched
    pub fn realize_batched_w(
        &self,
        g: &Graph,
        seed: u64,
        threads: usize,
        width: LaneWidth,
    ) -> Realization {
        match width {
            LaneWidth::W64 => self.realize_impl::<1>(g, seed, threads),
            LaneWidth::W128 => self.realize_impl::<2>(g, seed, threads),
            LaneWidth::W256 => self.realize_impl::<4>(g, seed, threads),
        }
    }

    fn realize_impl<const W: usize>(&self, g: &Graph, seed: u64, threads: usize) -> Realization
    where
        MsBfsW<W>: MsBfsWorkspace,
    {
        let n = g.num_nodes();
        let lanes = MsBfsW::<W>::LANES;
        let batches: Vec<Vec<NodeId>> = (0..n.div_ceil(lanes))
            .map(|c| {
                let lo = c * lanes;
                let hi = (lo + lanes).min(n);
                (lo as NodeId..hi as NodeId).collect()
            })
            .collect();
        let per_batch: Vec<Vec<Option<NodeId>>> =
            nav_par::parallel_map(batches.len(), threads, |b| {
                let centres = &batches[b];
                MsBfsW::<W>::with_ws(n, |ms| {
                    let rows = ms.distances(g, centres);
                    centres
                        .iter()
                        .enumerate()
                        .map(|(lane, &u)| {
                            let row = &rows[lane * n..(lane + 1) * n];
                            let mut rng = task_rng(seed, u as u64);
                            let k = rng.gen_range(1..=self.k_max);
                            let radius = Self::radius(k);
                            // Uniform over B(u, 2^k) by index: count the
                            // members (u itself is always one, d = 0),
                            // draw a rank, take the rank-th member in
                            // ascending node-id order.
                            let in_ball = |d: u32| d != INFINITY && d <= radius;
                            let count = row.iter().filter(|&&d| in_ball(d)).count() as u64;
                            let pick = rng.gen_range(0..count);
                            let chosen = row
                                .iter()
                                .enumerate()
                                .filter(|&(_, &d)| in_ball(d))
                                .nth(pick as usize)
                                .map(|(v, _)| v as NodeId)
                                .expect("ball contains at least the centre");
                            Some(chosen)
                        })
                        .collect()
                })
            });
        Realization::from_contacts(per_batch.into_iter().flatten().collect())
    }
}

/// `⌈log₂ n⌉` (0 for n = 1).
fn ceil_log2(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

impl AugmentationScheme for BallScheme {
    fn name(&self) -> String {
        "ball(thm4)".into()
    }

    fn batched_sampler(&self, g: &Graph, byte_cap: usize) -> Option<Box<dyn ContactSampler + '_>> {
        let _ = g;
        Some(Box::new(BallRowSampler::new(*self, byte_cap)))
    }

    fn batched_sampler_w(
        &self,
        g: &Graph,
        byte_cap: usize,
        width: LaneWidth,
    ) -> Option<Box<dyn ContactSampler + '_>> {
        let _ = g;
        Some(Box::new(BallRowSampler::with_width(*self, byte_cap, width)))
    }

    fn sample_contact(&self, g: &Graph, u: NodeId, rng: &mut dyn RngCore) -> Option<NodeId> {
        let k = rng.gen_range(1..=self.k_max);
        let radius = Self::radius(k);
        // Uniform element of B(u, 2^k) via reservoir sampling over a
        // truncated BFS — O(|B|) time, no ball materialisation. Stops as
        // soon as the whole graph is covered (dense cores at large radii).
        let n = g.num_nodes() as u64;
        with_bfs(g.num_nodes(), |bfs| {
            let mut chosen = u;
            let mut seen = 0u64;
            bfs.run(g, u, radius, |v, _| {
                seen += 1;
                // Reservoir: keep v with probability 1/seen.
                if rng.gen_range(0..seen) == 0 {
                    chosen = v;
                }
                seen < n
            });
            Some(chosen)
        })
    }
}

impl ExplicitScheme for BallScheme {
    fn contact_distribution(&self, g: &Graph, u: NodeId) -> Vec<(NodeId, f64)> {
        // One BFS collects distances; dyadic prefix sums give |B(u, 2^k)|.
        let n = g.num_nodes();
        let kk = self.k_max as usize;
        let mut dist_of: Vec<(NodeId, u32)> = Vec::new();
        with_bfs(n, |bfs| {
            let radius = if self.k_max >= 31 {
                u32::MAX
            } else {
                1u32 << self.k_max
            };
            bfs.run(g, u, radius, |v, d| {
                dist_of.push((v, d));
                true
            });
        });
        // |B(u, 2^k)| for k = 1..=K.
        let mut ball_sizes = vec![0usize; kk + 1];
        for &(_, d) in &dist_of {
            let r = rank_of_distance(d).max(1) as usize;
            if r <= kk {
                ball_sizes[r] += 1;
            }
        }
        for k in 1..=kk {
            ball_sizes[k] += if k > 1 { ball_sizes[k - 1] } else { 0 };
        }
        // suffix[r] = Σ_{k=r}^{K} 1/|B_k|.
        let mut suffix = vec![0.0f64; kk + 2];
        for k in (1..=kk).rev() {
            suffix[k] = suffix[k + 1]
                + if ball_sizes[k] > 0 {
                    1.0 / ball_sizes[k] as f64
                } else {
                    0.0
                };
        }
        let inv_scales = 1.0 / self.k_max as f64;
        dist_of
            .into_iter()
            .filter_map(|(v, d)| {
                let r = (rank_of_distance(d).max(1) as usize).min(kk + 1);
                let p = inv_scales * suffix[r];
                (p > 0.0).then_some((v, p))
            })
            .collect()
    }
}

/// One node's cached ball index: every node of the largest ball
/// `B(u, 2^K)`, sorted by (dyadic rank, node id), plus the dyadic prefix
/// sizes `|B(u, 2^k)|` — so "a uniform member of `B(u, 2^k)`" is one
/// `gen_range` over a prefix of `members`, `O(1)` per draw.
///
/// `B(u, 2^k) = { v : rank(v) ≤ k }` and ranks are bucketed in ascending
/// order, so each ball is exactly a prefix of the rank-major layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BallRow {
    /// Reachable nodes with `d ≤ 2^K`, rank-major, ascending id within a
    /// rank.
    members: Vec<NodeId>,
    /// `ball_sizes[k] = |B(u, 2^k)|` for `k = 1..=K` (`[0]` unused).
    ball_sizes: Vec<u32>,
}

impl BallRow {
    /// Builds the index from a full distance row of the centre
    /// (`row[v] = dist(u, v)`, [`INFINITY`] when unreachable).
    pub fn from_distances(scheme: BallScheme, row: &[u32]) -> Self {
        let kk = scheme.k_max as usize;
        let max_radius = BallScheme::radius(scheme.k_max);
        // Effective rank: the smallest scale in 1..=K whose ball holds the
        // node, or None when it is outside even the largest ball. The
        // saturated top radius (K ≥ 31) absorbs every reachable node.
        let rank_in = |d: u32| -> Option<usize> {
            if d == INFINITY || d > max_radius {
                return None;
            }
            Some((rank_of_distance(d).max(1) as usize).min(kk))
        };
        let mut counts = vec![0u32; kk + 1];
        for &d in row {
            if let Some(r) = rank_in(d) {
                counts[r] += 1;
            }
        }
        // Prefix the counts into ball sizes and bucket cursors.
        let mut ball_sizes = vec![0u32; kk + 1];
        let mut cursors = vec![0usize; kk + 1];
        let mut total = 0u32;
        for k in 1..=kk {
            cursors[k] = total as usize;
            total += counts[k];
            ball_sizes[k] = total;
        }
        let mut members = vec![0 as NodeId; total as usize];
        for (v, &d) in row.iter().enumerate() {
            if let Some(r) = rank_in(d) {
                members[cursors[r]] = v as NodeId;
                cursors[r] += 1;
            }
        }
        BallRow {
            members,
            ball_sizes,
        }
    }

    /// `|B(u, 2^k)|` for `k = 1..=K`.
    pub fn ball_size(&self, k: u32) -> usize {
        self.ball_sizes[k as usize] as usize
    }

    /// The members of `B(u, 2^k)` (rank-major prefix of the layout).
    pub fn ball_members(&self, k: u32) -> &[NodeId] {
        &self.members[..self.ball_sizes[k as usize] as usize]
    }

    /// One scheme draw from the cached index: uniform scale, then a
    /// uniform member of that ball — the same distribution as
    /// [`BallScheme::sample_contact`], in two `gen_range` calls.
    fn sample(&self, scheme: &BallScheme, rng: &mut dyn RngCore) -> Option<NodeId> {
        let k = rng.gen_range(1..=scheme.k_max) as usize;
        let count = self.ball_sizes[k] as u64;
        debug_assert!(count >= 1, "a ball always contains its centre");
        let pick = rng.gen_range(0..count);
        Some(self.members[pick as usize])
    }

    /// Payload bytes of the index (members + prefix table).
    pub fn bytes(&self) -> usize {
        (self.members.len() + self.ball_sizes.len()) * std::mem::size_of::<NodeId>()
    }
}

/// Backend (b) of the sampler abstraction: a per-worker **ball-row
/// cache** with deferred, batched row computation. The trial engine runs
/// a pair's trials in lockstep rounds ([`ContactSampler::wants_lockstep`])
/// and announces every concurrent walk's current node through
/// [`ContactSampler::prepare`]; the sampler packs the *uncached* ones —
/// real misses, no speculative lanes — up to `width.lanes()` per bit-parallel
/// MS-BFS pass and builds their [`BallRow`]s straight from the pass's
/// level-ordered discoveries. Every draw at a cached node is then two
/// `gen_range` calls. Same per-node distribution as the scalar
/// [`BallScheme::sample_contact`], radically different cost model:
/// `O(ball-BFS)` per *visit* becomes one shared pass per round plus
/// `O(1)` per revisit.
///
/// `byte_cap` bounds the cached payload: once full, draws at uncached
/// nodes fall back to the scalar scheme (counted in
/// [`SamplerStats::fallbacks`]) — still correct, just uncached.
pub struct BallRowSampler {
    scheme: BallScheme,
    rows: HashMap<NodeId, BallRow>,
    byte_cap: usize,
    bytes: usize,
    width: LaneWidth,
    stats: SamplerStats,
}

impl BallRowSampler {
    /// A sampler for `scheme` bounded at `byte_cap` cached bytes
    /// (`usize::MAX` = unbounded), filling 64 rows per pass.
    pub fn new(scheme: BallScheme, byte_cap: usize) -> Self {
        Self::with_width(scheme, byte_cap, LaneWidth::W64)
    }

    /// [`new`], filling `width.lanes()` rows per MS-BFS pass. Rows built
    /// at any width hold the same rank buckets (discovery order within a
    /// bucket may differ — every draw is uniform over a bucket prefix, so
    /// the per-draw distribution is width-invariant).
    ///
    /// [`new`]: BallRowSampler::new
    pub fn with_width(scheme: BallScheme, byte_cap: usize, width: LaneWidth) -> Self {
        BallRowSampler {
            scheme,
            rows: HashMap::new(),
            byte_cap,
            bytes: 0,
            width,
            stats: SamplerStats::default(),
        }
    }

    /// The cached row of `u`, if resident.
    pub fn row(&self, u: NodeId) -> Option<&BallRow> {
        self.rows.get(&u)
    }

    /// Computes and caches ball rows for up to `width.lanes()` centres in
    /// one MS-BFS pass, building each [`BallRow`] directly from the pass's
    /// level-ordered discoveries (distances arrive ascending per lane, so
    /// rank buckets are contiguous runs — no distance buffer, no sort).
    fn fill_batch(&mut self, g: &Graph, centres: &[NodeId]) {
        match self.width {
            LaneWidth::W64 => self.fill_batch_w::<1>(g, centres),
            LaneWidth::W128 => self.fill_batch_w::<2>(g, centres),
            LaneWidth::W256 => self.fill_batch_w::<4>(g, centres),
        }
    }

    fn fill_batch_w<const W: usize>(&mut self, g: &Graph, centres: &[NodeId])
    where
        MsBfsW<W>: MsBfsWorkspace,
    {
        debug_assert!(centres.len() <= MsBfsW::<W>::LANES);
        let kk = self.scheme.k_max;
        let max_radius = BallScheme::radius(kk);
        let mut building: Vec<BallRow> = centres
            .iter()
            .map(|_| BallRow {
                members: Vec::new(),
                ball_sizes: vec![0u32; kk as usize + 1],
            })
            .collect();
        MsBfsW::<W>::with_ws(g.num_nodes(), |ms| {
            ms.run(g, centres, |lane, v, d| {
                if d <= max_radius {
                    let row = &mut building[lane as usize];
                    let r = (rank_of_distance(d).max(1)).min(kk) as usize;
                    row.members.push(v);
                    row.ball_sizes[r] += 1;
                }
            });
        });
        for (c, mut row) in centres.iter().zip(building) {
            // Per-rank counts → cumulative ball sizes.
            for k in 2..=kk as usize {
                row.ball_sizes[k] += row.ball_sizes[k - 1];
            }
            debug_assert_eq!(
                row.ball_sizes[kk as usize] as usize,
                row.members.len(),
                "level-ordered discoveries must bucket every member"
            );
            self.bytes += row.bytes();
            self.stats.rows += 1;
            self.rows.insert(*c, row);
        }
        self.stats.passes += 1;
        self.stats.row_bytes = self.bytes as u64;
    }

    /// The announced nodes that are not yet cached and still fit the byte
    /// budget, deduplicated.
    fn plan_misses(&self, g: &Graph, nodes: &[NodeId]) -> Vec<NodeId> {
        let n = g.num_nodes();
        // A row's worst case: n member ids plus the K+1 prefix entries.
        let per_row = (n + self.scheme.k_max as usize + 1) * std::mem::size_of::<NodeId>();
        let room = (self.byte_cap.saturating_sub(self.bytes)) / per_row.max(1);
        let mut misses: Vec<NodeId> = Vec::new();
        let mut seen: HashSet<NodeId> = HashSet::new();
        for &u in nodes {
            if misses.len() >= room {
                break;
            }
            if !self.rows.contains_key(&u) && seen.insert(u) {
                misses.push(u);
            }
        }
        misses
    }
}

impl ContactSampler for BallRowSampler {
    fn name(&self) -> String {
        "ball(thm4)+rows".into()
    }

    fn sample(&mut self, g: &Graph, u: NodeId, rng: &mut dyn RngCore) -> Option<NodeId> {
        if let Some(row) = self.rows.get(&u) {
            self.stats.hits += 1;
            return row.sample(&self.scheme, rng);
        }
        self.stats.misses += 1;
        let misses = self.plan_misses(g, &[u]);
        if misses.is_empty() {
            self.stats.fallbacks += 1;
            return self.scheme.sample_contact(g, u, rng);
        }
        self.fill_batch(g, &misses);
        self.rows[&u].sample(&self.scheme, rng)
    }

    fn prepare(&mut self, g: &Graph, nodes: &[NodeId]) {
        let misses = self.plan_misses(g, nodes);
        for chunk in misses.chunks(self.width.lanes()) {
            self.fill_batch(g, chunk);
        }
    }

    fn wants_lockstep(&self) -> bool {
        true
    }

    fn stats(&self) -> SamplerStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance::{check_scheme, ConformanceConfig};

    use nav_graph::GraphBuilder;
    use nav_par::rng::seeded_rng;

    fn path(n: usize) -> Graph {
        GraphBuilder::from_edges(n, (0..n as NodeId - 1).map(|u| (u, u + 1))).unwrap()
    }

    #[test]
    fn ceil_log2_table() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn distribution_sums_to_one() {
        // Balls always contain u, so the scheme is fully stochastic.
        for n in [2usize, 5, 16, 33] {
            let g = path(n);
            let scheme = BallScheme::new(&g);
            for u in [0u32, (n / 2) as u32, (n - 1) as u32] {
                let total: f64 = scheme
                    .contact_distribution(&g, u)
                    .iter()
                    .map(|&(_, p)| p)
                    .sum();
                assert!((total - 1.0).abs() < 1e-9, "n={n} u={u}: {total}");
            }
        }
    }

    #[test]
    fn sampler_matches_distribution_on_path() {
        let g = path(17);
        let scheme = BallScheme::new(&g);
        check_scheme(
            &g,
            &scheme,
            &[0, 8, 16],
            &ConformanceConfig::with_samples(120_000),
        );
    }

    #[test]
    fn sampler_matches_distribution_on_star() {
        let g = GraphBuilder::from_edges(9, (1..9).map(|v| (0, v as NodeId))).unwrap();
        let scheme = BallScheme::new(&g);
        check_scheme(
            &g,
            &scheme,
            &[0, 3],
            &ConformanceConfig::with_samples(60_000),
        );
    }

    #[test]
    fn closer_nodes_never_less_likely() {
        // φ_u is non-increasing in distance (suffix sums of shrinking
        // terms) — the small-world monotonicity.
        let g = path(65);
        let scheme = BallScheme::new(&g);
        let dist = scheme.contact_distribution(&g, 0);
        let mut by_node = vec![0.0f64; 65];
        for (v, p) in dist {
            by_node[v as usize] = p;
        }
        for v in 1..64usize {
            assert!(
                by_node[v] >= by_node[v + 1] - 1e-12,
                "monotonicity broke at {v}: {} < {}",
                by_node[v],
                by_node[v + 1]
            );
        }
    }

    #[test]
    fn paper_formula_spot_check() {
        // Path of 8, u = 0, K = 3. Balls: |B(0,2)| = 3, |B(0,4)| = 5,
        // |B(0,8)| = 8. Node at distance 1 (rank ≤ 1): p = (1/3)(1/3+1/5+1/8).
        let g = path(8);
        let scheme = BallScheme::new(&g);
        assert_eq!(scheme.scales(), 3);
        let dist = scheme.contact_distribution(&g, 0);
        let p1 = dist.iter().find(|&&(v, _)| v == 1).unwrap().1;
        let expect = (1.0 / 3.0) * (1.0 / 3.0 + 1.0 / 5.0 + 1.0 / 8.0);
        assert!((p1 - expect).abs() < 1e-12, "{p1} vs {expect}");
        // Node at distance 3 (rank 2): p = (1/3)(1/5 + 1/8).
        let p3 = dist.iter().find(|&&(v, _)| v == 3).unwrap().1;
        let expect3 = (1.0 / 3.0) * (1.0 / 5.0 + 1.0 / 8.0);
        assert!((p3 - expect3).abs() < 1e-12);
        // Node at distance 8 is outside every ball? dist 7, rank 3:
        // p = (1/3)(1/8).
        let p7 = dist.iter().find(|&&(v, _)| v == 7).unwrap().1;
        assert!((p7 - (1.0 / 3.0) * (1.0 / 8.0)).abs() < 1e-12);
    }

    #[test]
    fn batched_realization_is_thread_invariant_and_deterministic() {
        let g = path(150); // spans three 64-lane batches
        let scheme = BallScheme::new(&g);
        let r1 = scheme.realize_batched(&g, 9, 1);
        let r4 = scheme.realize_batched(&g, 9, 4);
        assert_eq!(r1, r4, "thread count must not change the realization");
        assert_ne!(r1, scheme.realize_batched(&g, 10, 1));
        assert_eq!(r1.num_links(), 150); // the scheme is fully stochastic
    }

    #[test]
    fn batched_realization_matches_distribution() {
        // Empirical contact frequencies of node u across many batched
        // realizations must match the closed-form φ_u.
        let g = path(17);
        let scheme = BallScheme::new(&g);
        let u = 8u32;
        let samples = 60_000usize;
        let mut counts = [0usize; 17];
        for s in 0..samples {
            let real = scheme.realize_batched(&g, s as u64, 1);
            counts[real.contact(u).unwrap() as usize] += 1;
        }
        let exact = scheme.contact_distribution(&g, u);
        let mut expected = [0.0f64; 17];
        for (v, p) in exact {
            expected[v as usize] = p;
        }
        for v in 0..17 {
            let emp = counts[v] as f64 / samples as f64;
            assert!(
                (emp - expected[v]).abs() < 0.012,
                "node {u}→{v}: empirical {emp:.4} vs exact {:.4}",
                expected[v]
            );
        }
    }

    #[test]
    fn batched_realization_stays_inside_largest_ball() {
        let g = path(40);
        let scheme = BallScheme::new(&g);
        let real = scheme.realize_batched(&g, 3, 2);
        let max_radius = 1u64 << scheme.scales();
        for u in 0..40u32 {
            let v = real.contact(u).unwrap();
            let d = (v as i64 - u as i64).unsigned_abs();
            assert!(d <= max_radius, "u={u} v={v}");
        }
    }

    #[test]
    fn tiny_graph_sampling() {
        let g = path(2);
        let scheme = BallScheme::new(&g);
        let mut rng = seeded_rng(33);
        for u in 0..2u32 {
            let v = scheme.sample_contact(&g, u, &mut rng).unwrap();
            assert!(v < 2);
        }
    }

    #[test]
    fn ball_row_prefixes_are_exactly_the_dyadic_balls() {
        let g = path(23);
        let scheme = BallScheme::new(&g);
        let u = 7u32;
        let dist = with_bfs(23, |bfs| bfs.distances(&g, u));
        let row = BallRow::from_distances(scheme, &dist);
        for k in 1..=scheme.scales() {
            let radius = if k >= 31 { u32::MAX } else { 1u32 << k };
            let mut expect: Vec<NodeId> = (0..23u32)
                .filter(|&v| dist[v as usize] != INFINITY && dist[v as usize] <= radius)
                .collect();
            let mut got = row.ball_members(k).to_vec();
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expect, "k={k}");
            assert_eq!(row.ball_size(k), expect.len());
        }
        assert!(row.bytes() >= 23 * 4);
    }

    #[test]
    fn ball_row_drops_unreachable_nodes() {
        let dist = [0u32, 1, INFINITY, 3];
        let g = GraphBuilder::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let scheme = BallScheme::new(&g); // K = 2
        let row = BallRow::from_distances(scheme, &dist);
        assert_eq!(row.ball_members(scheme.scales()), &[0, 1, 3]);
    }

    #[test]
    fn row_sampler_matches_scalar_distribution() {
        // The cached draw and the scalar reservoir draw must agree with
        // the closed-form φ_u — same empirical gate as the scalar test.
        let g = path(17);
        let scheme = BallScheme::new(&g);
        let exact = scheme.contact_distribution(&g, 8);
        let mut expected = [0.0f64; 17];
        for (v, p) in exact {
            expected[v as usize] = p;
        }
        let mut sampler = BallRowSampler::new(scheme, usize::MAX);
        let mut rng = seeded_rng(77);
        let samples = 120_000usize;
        let mut counts = [0usize; 17];
        for _ in 0..samples {
            counts[sampler.sample(&g, 8, &mut rng).unwrap() as usize] += 1;
        }
        for v in 0..17 {
            let emp = counts[v] as f64 / samples as f64;
            assert!(
                (emp - expected[v]).abs() < 0.012,
                "8→{v}: empirical {emp:.4} vs exact {:.4}",
                expected[v]
            );
        }
        let stats = sampler.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits as usize, samples - 1);
        assert_eq!(stats.passes, 1);
        assert_eq!(stats.rows, 1); // demand-driven: only the missed node
        assert_eq!(stats.fallbacks, 0);
        assert!(sampler.row(8).is_some());
        assert!(stats.row_bytes > 0);
    }

    #[test]
    fn prepare_batches_all_announced_misses_into_one_pass() {
        let g = path(150);
        let scheme = BallScheme::new(&g);
        let mut sampler = BallRowSampler::new(scheme, usize::MAX);
        // 20 distinct walks announce their nodes (with repeats): one
        // MS-BFS pass computes exactly the distinct rows.
        let nodes: Vec<NodeId> = (0..40).map(|i| (i % 20) * 7).collect();
        sampler.prepare(&g, &nodes);
        assert_eq!(sampler.stats().rows, 20);
        assert_eq!(sampler.stats().passes, 1);
        // Every announced node now samples as a hit.
        let mut rng = seeded_rng(5);
        for &u in &nodes {
            assert!(sampler.sample(&g, u, &mut rng).unwrap() < 150);
        }
        assert_eq!(sampler.stats().misses, 0);
        // More than 64 distinct misses split into multiple passes.
        let many: Vec<NodeId> = (0..150).collect();
        sampler.prepare(&g, &many);
        assert_eq!(sampler.stats().rows, 150);
        assert_eq!(sampler.stats().passes, 1 + 3); // 130 new rows / 64 per pass
        assert!(sampler.wants_lockstep());
    }

    #[test]
    fn batched_rows_agree_with_scalar_row_construction() {
        // fill_batch builds rows from level-ordered discoveries;
        // from_distances builds them from a raw distance row. Same balls.
        let g = path(37);
        let scheme = BallScheme::new(&g);
        let mut sampler = BallRowSampler::new(scheme, usize::MAX);
        sampler.prepare(&g, &(0..37).collect::<Vec<_>>());
        for u in 0..37u32 {
            let dist = with_bfs(37, |bfs| bfs.distances(&g, u));
            let reference = BallRow::from_distances(scheme, &dist);
            let got = sampler.row(u).unwrap();
            for k in 1..=scheme.scales() {
                assert_eq!(got.ball_size(k), reference.ball_size(k), "u={u} k={k}");
                let mut a = got.ball_members(k).to_vec();
                let mut b = reference.ball_members(k).to_vec();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "u={u} k={k}");
            }
        }
    }

    #[test]
    fn batched_realization_is_width_invariant() {
        // Draws are by index over exact rows with a per-node RNG, so the
        // realization must be bit-identical at every word-block width.
        let g = path(300); // > 256: every width still needs multiple passes
        let scheme = BallScheme::new(&g);
        let base = scheme.realize_batched(&g, 11, 2);
        for width in LaneWidth::ALL {
            assert_eq!(
                scheme.realize_batched_w(&g, 11, 2, width),
                base,
                "width {width}"
            );
        }
    }

    #[test]
    fn wide_sampler_rows_hold_the_same_rank_buckets() {
        // Rows filled at 128/256 lanes bucket exactly the dyadic balls the
        // scalar construction does (member order within a bucket is free).
        let g = path(150);
        let scheme = BallScheme::new(&g);
        for width in [LaneWidth::W128, LaneWidth::W256] {
            let mut sampler = BallRowSampler::with_width(scheme, usize::MAX, width);
            sampler.prepare(&g, &(0..150).collect::<Vec<_>>());
            assert_eq!(sampler.stats().rows, 150, "{width}");
            assert_eq!(
                sampler.stats().passes as usize,
                150usize.div_ceil(width.lanes()),
                "{width}"
            );
            for u in 0..150u32 {
                let dist = with_bfs(150, |bfs| bfs.distances(&g, u));
                let reference = BallRow::from_distances(scheme, &dist);
                let got = sampler.row(u).unwrap();
                for k in 1..=scheme.scales() {
                    assert_eq!(
                        got.ball_size(k),
                        reference.ball_size(k),
                        "{width} u={u} k={k}"
                    );
                    let mut a = got.ball_members(k).to_vec();
                    let mut b = reference.ball_members(k).to_vec();
                    a.sort_unstable();
                    b.sort_unstable();
                    assert_eq!(a, b, "{width} u={u} k={k}");
                }
            }
        }
    }

    #[test]
    fn wide_row_sampler_passes_conformance_at_every_width() {
        // The per-draw distribution is width-invariant: the chi-squared
        // gate that pins the 64-lane cache also pins the wide ones.
        let g = path(17);
        let scheme = BallScheme::new(&g);
        let cfg = ConformanceConfig::with_samples(60_000);
        for width in LaneWidth::ALL {
            let mut sampler = BallRowSampler::with_width(scheme, usize::MAX, width);
            crate::conformance::check_sampler(&g, &scheme, &mut sampler, &[0, 8, 16], &cfg);
        }
    }

    #[test]
    fn exhausted_byte_budget_falls_back_to_scalar() {
        let g = path(30);
        let scheme = BallScheme::new(&g);
        let mut sampler = BallRowSampler::new(scheme, 0);
        let mut rng = seeded_rng(6);
        for _ in 0..10 {
            let v = sampler.sample(&g, 3, &mut rng).unwrap();
            assert!(v < 30);
        }
        let stats = sampler.stats();
        assert_eq!(stats.fallbacks, 10);
        assert_eq!(stats.rows, 0);
        assert_eq!(stats.row_bytes, 0);
        assert!(sampler.row(3).is_none());
    }

    #[test]
    fn scheme_hands_out_its_batched_sampler() {
        let g = path(9);
        let scheme = BallScheme::new(&g);
        let mut s = scheme
            .batched_sampler(&g, usize::MAX)
            .expect("ball has one");
        assert_eq!(s.name(), "ball(thm4)+rows");
        let mut rng = seeded_rng(8);
        assert!(s.sample(&g, 4, &mut rng).unwrap() < 9);
        assert_eq!(s.stats().misses, 1);
    }
}
