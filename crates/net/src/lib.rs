//! # nav-net — the TCP serving front for `nav-engine`
//!
//! PR 3 made the reproduction a *service shape* (a persistent engine
//! answering query batches); this crate makes it an actual **server**.
//! The batch API was transport-agnostic by design, and this is the
//! transport: a versioned, length-prefixed binary protocol over TCP,
//! small enough to have no dependencies and total enough to face a
//! hostile peer.
//!
//! * [`frame`] — the wire format: a 12-byte header (magic, version,
//!   kind, payload length) framing request / response / typed-error
//!   payloads. Floats travel as IEEE-754 bit patterns, so the engine's
//!   bit-identical determinism contract extends across the wire. The
//!   decoder never panics and never allocates beyond its configured
//!   bound (property-tested in `tests/net.rs`).
//! * [`server`] — [`NetServer`]: a multi-threaded blocking server
//!   (accept loop + worker pool over a bounded connection queue, graceful
//!   shutdown, byte/batch/in-flight admission limits via [`NetConfig`]).
//!   Engine execution is serialized — the engine already fans each batch
//!   out to its own compute workers — while socket I/O and codec work
//!   overlap across connections.
//! * [`client`] — [`NetClient`]: a blocking connection that stamps each
//!   request with its cumulative RNG offset, making a client stream
//!   bit-identical to the same batches through a local
//!   [`nav_engine::Engine`] no matter what other connections interleave
//!   with it (the [`nav_engine::Engine::serve_at`] contract). Layered on
//!   top, [`RetryingClient`] reconnects and replays on retryable
//!   failures (transport drops, [`ErrorCode::Overloaded`] sheds) with
//!   jittered backoff — and because the RNG base is fixed before the
//!   first attempt, the retried stream is bit-identical to an
//!   uninterrupted one.
//!
//! The protocol also carries an **ops surface**: a [`StatsRequest`]
//! frame answers with a [`StatsReply`] — merged engine counters,
//! per-stage latency histograms (engine pipeline stages plus the
//! front's own socket/decode/encode timings, recorded via
//! [`read_frame_timed`]), and sampled query traces — rendered by
//! `nav-engine stats` as Prometheus-style text or JSON.
//!
//! And a **durability surface**: a [`SnapshotRequest`] frame answers
//! with a [`SnapshotReply`] carrying an encoded `nav-store` snapshot of
//! the served engine (opaque to the wire layer), while
//! [`NetServer::record_to`] appends every accepted request frame and
//! its reply to a length-prefixed traffic log — together they make
//! `kill -9` → restore → replay a bit-identical round trip, exercised
//! end to end by `nav-engine snapshot` / `replay` and CI's
//! durability-smoke job.
//!
//! The `nav-engine serve-tcp` / `bench-tcp` CLI pair (in `nav-bench`)
//! puts a workload file on one end of this protocol and a replaying
//! client on the other; `BENCH_net.json` records what the wire costs.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod frame;
pub mod server;

pub use client::{NetClient, NetError, RetryPolicy, RetryingClient};
pub use frame::{
    frames_bits_eq, is_deadline_expiry, is_timeout, read_frame, read_frame_deadline,
    read_frame_timed, write_frame, ErrorCode, ErrorFrame, Frame, FrameError, MetricsSnapshot,
    ReadError, Request, Response, SnapshotReply, SnapshotRequest, StatsReply, StatsRequest,
    WireTiming,
};
pub use server::{
    compose_handle, split_handle, NetConfig, NetServer, ServerHandle, TENANT_BITS, TENANT_MASK,
};
