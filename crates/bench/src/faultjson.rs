//! The `BENCH_fault.json` emitter (`nav-engine chaos-bench`).
//!
//! Measures what failures cost: the serving engine replaying a zipfian
//! stream under the two fault dimensions of [`nav_core::faulty`] —
//! i.i.d. **link drops** (each long-range lookup fails with probability
//! `p`, routing falls back to the local greedy hop) and **node churn**
//! (a seeded [`FailurePlan`] takes 5% of nodes down per epoch, routing
//! falls back to the best *live* local hop or fails when stuck). Per
//! graph family the emitter renders a success/stretch-vs-`p` curve for
//! `p ∈ {0, 0.1, 0.25, 0.5}`, once with drops alone and once with churn
//! layered on top, plus the warm-serving throughput cost of churn.
//!
//! Like the other emitters, correctness gates come first, asserted
//! before a single row is rendered:
//!
//! * every faulty replay must be **bit-identical** between a single
//!   engine and a 3-shard [`ShardedEngine`] — the determinism contract
//!   surviving failure injection;
//! * pure link drops never fail a walk on a connected graph (the local
//!   fallback always makes progress), so drop-only success is exactly
//!   1.0 — not approximately;
//! * degradation is **monotone** in `p` (stretch non-decreasing,
//!   churned success non-increasing) within a declared statistical
//!   tolerance [`MONOTONE_EPS`];
//! * warm churned throughput stays within the declared budget
//!   [`MIN_WARM_RATIO`] of the fault-free warm pass.

use crate::benchjson::stats_identical;
use crate::workloads::Workload;
use crate::ExpConfig;
use nav_core::faulty::{FailurePlan, FaultConfig};
use nav_core::trial::PairStats;
use nav_core::uniform::UniformScheme;
use nav_engine::workload::{zipf_queries, ZipfSpec};
use nav_engine::{EngineConfig, Query, QueryBatch, ShardedEngine};
use nav_graph::Graph;
use std::time::Instant;

fn fms(v: f64) -> String {
    format!("{v:.3}")
}

/// The drop-probability sweep.
pub const DROP_GRID: [f64; 4] = [0.0, 0.1, 0.25, 0.5];

/// Churn epochs the failure plan cycles through.
const CHURN_EPOCHS: u32 = 3;

/// Statistical tolerance for the monotone-degradation gates: adjacent
/// grid points may disagree by this much before the emitter panics
/// (success rates and stretch are sample means over tens of thousands
/// of walks, not exact quantities).
pub const MONOTONE_EPS: f64 = 0.02;

/// The declared throughput budget: the warm churned replay must sustain
/// at least this fraction of the fault-free warm replay's queries/s.
/// The comparison is deliberately lopsided — the fault-free warm pass
/// is nearly pure row-cache hits, while churn pays a per-hop liveness
/// hash over every neighbour *and* re-walks rows the epoch flips
/// invalidated — so a 10–20× gap is the honest steady-state cost at
/// full size. The gate guards against pathological regressions (a
/// liveness check gone quadratic), not against that inherent gap.
pub const MIN_WARM_RATIO: f64 = 0.05;

/// One measured point of the degradation curve.
struct FaultRow {
    drop_p: f64,
    success: f64,
    stretch: f64,
    failures: usize,
    dropped_links: u64,
    rerouted_hops: u64,
    epoch_flips: u64,
    elapsed_ms: f64,
}

/// A `ShardedEngine` over `shards` identical uniform-scheme engines.
fn engine(g: &Graph, shards: usize, cfg: EngineConfig) -> ShardedEngine {
    ShardedEngine::new(g.clone(), || Box::new(UniformScheme), cfg, shards)
}

/// Replays `queries` in batches of `batch`, returning the concatenated
/// answers and the wall-clock in ms.
fn replay(engine: &mut ShardedEngine, queries: &[Query], batch: usize) -> (Vec<PairStats>, f64) {
    let t0 = Instant::now();
    let mut answers = Vec::with_capacity(queries.len());
    for chunk in queries.chunks(batch.max(1)) {
        let result = engine
            .serve(&QueryBatch {
                queries: chunk.to_vec(),
            })
            .expect("faulty replay");
        answers.extend(result.answers);
    }
    (answers, t0.elapsed().as_secs_f64() * 1e3)
}

/// Mean stretch (`mean_steps / dist`) over pairs with at least one
/// successful trial out of `trials`; failed trials never contribute
/// steps (`mean_steps` averages successes only), and a pair with no
/// success at all has nothing to measure.
fn mean_stretch(answers: &[PairStats], trials: usize) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for a in answers {
        if a.dist > 0 && a.failures < trials {
            sum += a.mean_steps / f64::from(a.dist);
            count += 1;
        }
    }
    sum / count.max(1) as f64
}

/// Runs one grid point: a single-engine replay, cross-checked
/// bit-for-bit against a 3-shard replay of the same stream. The fault
/// under test rides in `cfg.fault`.
fn measure(g: &Graph, queries: &[Query], batch: usize, cfg: EngineConfig, label: &str) -> FaultRow {
    let mut single = engine(g, 1, cfg);
    let (answers, elapsed_ms) = replay(&mut single, queries, batch);
    let mut sharded = engine(g, 3, cfg);
    let (sharded_answers, _) = replay(&mut sharded, queries, batch);
    assert!(
        stats_identical(&answers, &sharded_answers),
        "{label}: sharded faulty replay diverged from the single engine"
    );
    let m = single.metrics();
    let total_trials: usize = queries.iter().map(|q| q.trials).sum();
    let per_query_trials = queries.first().map_or(1, |q| q.trials);
    let failures: usize = answers.iter().map(|a| a.failures).sum();
    FaultRow {
        drop_p: cfg.fault.drop_prob,
        success: 1.0 - failures as f64 / total_trials.max(1) as f64,
        stretch: mean_stretch(&answers, per_query_trials),
        failures,
        dropped_links: m.dropped_links,
        rerouted_hops: m.rerouted_hops,
        epoch_flips: m.epoch_flips,
        elapsed_ms,
    }
}

fn render_rows(rows: &[FaultRow], queries: usize) -> String {
    let mut out = String::new();
    for (i, r) in rows.iter().enumerate() {
        let qps = queries as f64 / (r.elapsed_ms / 1e3);
        out.push_str(&format!(
            "        {{\"drop_p\": {}, \"success_rate\": {}, \"mean_stretch\": {}, \"failures\": {}, \"dropped_links\": {}, \"rerouted_hops\": {}, \"epoch_flips\": {}, \"elapsed_ms\": {}, \"qps\": {}}}{}\n",
            r.drop_p,
            fms(r.success),
            fms(r.stretch),
            r.failures,
            r.dropped_links,
            r.rerouted_hops,
            r.epoch_flips,
            fms(r.elapsed_ms),
            fms(qps),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out
}

/// Runs the fault benchmark and renders `BENCH_fault.json`.
///
/// # Panics
/// Panics if any faulty replay diverges between shard counts, if a
/// drop-only walk fails on a connected graph, if degradation is not
/// monotone in `p` (within [`MONOTONE_EPS`]), or if warm churned
/// throughput falls below [`MIN_WARM_RATIO`] of the fault-free warm
/// pass — the JSON is only produced for curves worth reading.
pub fn render_fault_bench(cfg: &ExpConfig) -> String {
    let (n_req, count, hot, batch) = if cfg.quick {
        (400, 2_000, 64, 256)
    } else {
        (4096, 8_000, 512, 512)
    };
    let trials = 4usize;
    // Families where long links carry real distance (large diameters):
    // link drops visibly stretch walks, churn visibly strands them.
    let families = [
        (Workload::Grid2d, "grid2d"),
        (Workload::RandomTree, "random-tree"),
    ];

    let mut family_blocks = String::new();
    let mut churn_overhead = String::new();
    for (fi, (family, name)) in families.iter().enumerate() {
        let g = family.build(n_req, cfg.seed_for("fault-graph", n_req));
        let n = g.num_nodes();
        let zipf = ZipfSpec {
            count,
            theta: 1.1,
            seed: cfg.seed_for("fault-zipf", n),
            hot: hot.min(n),
        };
        let queries = zipf_queries(n, &zipf, trials);
        let distinct = {
            let mut t: Vec<_> = queries.iter().map(|q| q.t).collect();
            t.sort_unstable();
            t.dedup();
            t.len()
        };
        let cache_bytes = (distinct * n * 4).max(1 << 20);
        let plan = FailurePlan::standard(cfg.seed_for("fault-plan", n), CHURN_EPOCHS);
        let base_cfg = EngineConfig {
            seed: cfg.seed_for("fault-trials", n),
            threads: cfg.threads,
            cache_bytes,
            ..EngineConfig::default()
        };

        // --- drops alone: success is structurally perfect, stretch grows --
        let drop_rows: Vec<FaultRow> = DROP_GRID
            .iter()
            .map(|&p| {
                let fault = FaultConfig {
                    drop_prob: p,
                    plan: None,
                };
                measure(
                    &g,
                    &queries,
                    batch,
                    EngineConfig { fault, ..base_cfg },
                    &format!("{name} drop p={p}"),
                )
            })
            .collect();
        for r in &drop_rows {
            assert_eq!(
                r.failures, 0,
                "{name}: drop-only routing failed {} walks — the local fallback must always make progress on a connected graph",
                r.failures
            );
            assert!(
                (r.drop_p > 0.0) == (r.dropped_links > 0),
                "{name} p={}: dropped_links={} — the drop coin fired iff p > 0",
                r.drop_p,
                r.dropped_links
            );
        }
        for w in drop_rows.windows(2) {
            assert!(
                w[1].stretch >= w[0].stretch - MONOTONE_EPS,
                "{name}: drop stretch not monotone ({} at p={} vs {} at p={})",
                w[1].stretch,
                w[1].drop_p,
                w[0].stretch,
                w[0].drop_p
            );
            assert!(
                w[1].dropped_links >= w[0].dropped_links,
                "{name}: dropped_links not monotone in p"
            );
        }

        // --- churn layered on top: success degrades, epochs flip ----------
        let churn_rows: Vec<FaultRow> = DROP_GRID
            .iter()
            .map(|&p| {
                let fault = FaultConfig {
                    drop_prob: p,
                    plan: Some(plan),
                };
                measure(
                    &g,
                    &queries,
                    batch,
                    EngineConfig { fault, ..base_cfg },
                    &format!("{name} churn p={p}"),
                )
            })
            .collect();
        for r in &churn_rows {
            assert!(
                r.epoch_flips >= 1,
                "{name} p={}: the query stream crossed no churn epoch",
                r.drop_p
            );
        }
        assert!(
            churn_rows[0].failures > 0,
            "{name}: churn stranded no walk — the down fraction should bite at these sizes"
        );
        assert!(
            churn_rows[0].rerouted_hops > 0,
            "{name}: churn rerouted no hop"
        );
        for w in churn_rows.windows(2) {
            assert!(
                w[1].success <= w[0].success + MONOTONE_EPS,
                "{name}: churned success not monotone ({} at p={} vs {} at p={})",
                w[1].success,
                w[1].drop_p,
                w[0].success,
                w[0].drop_p
            );
        }

        family_blocks.push_str(&format!(
            "    {{\n      \"family\": \"{name}\", \"n\": {n}, \"m\": {}, \"queries\": {count}, \"trials_per_query\": {trials}, \"distinct_targets\": {distinct},\n      \"drop_only\": [\n{}      ],\n      \"with_churn\": [\n{}      ],\n      \"gates\": {{\"drop_success_exact\": 1.0, \"stretch_nondecreasing\": true, \"churn_success_nonincreasing\": true, \"sharded_bit_identical\": true}}\n    }}{}\n",
            g.num_edges(),
            render_rows(&drop_rows, count),
            render_rows(&churn_rows, count),
            if fi + 1 == families.len() { "" } else { "," }
        ));

        // --- warm throughput under churn, first family only ---------------
        // One cold pass, then best-of-two warm passes (min ms damps
        // scheduler noise): fault-free baseline vs churn + drops at
        // p = 0.25.
        if fi == 0 {
            let warm = |mut e: ShardedEngine| {
                let (_, _) = replay(&mut e, &queries, batch);
                let (_, a) = replay(&mut e, &queries, batch);
                let (_, b) = replay(&mut e, &queries, batch);
                a.min(b)
            };
            let base_warm_ms = warm(engine(&g, 1, base_cfg));
            let churn_cfg = EngineConfig {
                fault: FaultConfig {
                    drop_prob: 0.25,
                    plan: Some(plan),
                },
                ..base_cfg
            };
            let churn_warm_ms = warm(engine(&g, 1, churn_cfg));
            let ratio = base_warm_ms / churn_warm_ms;
            assert!(
                ratio >= MIN_WARM_RATIO,
                "warm churned replay fell below the declared budget: {:.3}× the fault-free warm pass (budget {MIN_WARM_RATIO})",
                ratio
            );
            let qps = |ms: f64| count as f64 / (ms / 1e3);
            churn_overhead = format!(
                "  \"churn_overhead\": {{\"family\": \"{name}\", \"drop_p\": 0.25, \"faultfree_warm_qps\": {}, \"churned_warm_qps\": {}, \"ratio\": {}, \"declared_min_ratio\": {MIN_WARM_RATIO}, \"within_budget\": true}},\n",
                fms(qps(base_warm_ms)),
                fms(qps(churn_warm_ms)),
                fms(ratio),
            );
        }
    }

    // --- render ----------------------------------------------------------
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"nav-bench-fault/v1\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if cfg.quick { "quick" } else { "full" }
    ));
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!("  \"threads\": {},\n", cfg.threads));
    out.push_str(&format!(
        "  \"host\": {},\n",
        nav_par::HostMeta::current().to_json()
    ));
    out.push_str(&format!(
        "  \"drop_grid\": [{}],\n",
        DROP_GRID.map(|p| p.to_string()).join(", ")
    ));
    out.push_str(&format!(
        "  \"churn\": {{\"epochs\": {CHURN_EPOCHS}, \"period\": 1024, \"down_frac\": 0.05}},\n"
    ));
    out.push_str(&format!("  \"monotone_eps\": {MONOTONE_EPS},\n"));
    out.push_str("  \"families\": [\n");
    out.push_str(&family_blocks);
    out.push_str("  ],\n");
    out.push_str(&churn_overhead);
    out.push_str("  \"bit_identical_across_shards\": true\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fault_bench_renders_valid_schema_with_monotone_curves() {
        let cfg = ExpConfig {
            quick: true,
            seed: 6,
            threads: 2,
            ..ExpConfig::default()
        };
        let json = render_fault_bench(&cfg);
        for key in [
            "\"schema\": \"nav-bench-fault/v1\"",
            "\"mode\": \"quick\"",
            "\"host\":",
            "\"drop_grid\": [0, 0.1, 0.25, 0.5]",
            "\"family\": \"grid2d\"",
            "\"family\": \"random-tree\"",
            "\"drop_only\": [",
            "\"with_churn\": [",
            "\"success_rate\":",
            "\"mean_stretch\":",
            "\"epoch_flips\":",
            "\"churn_overhead\":",
            "\"within_budget\": true",
            "\"bit_identical_across_shards\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.ends_with("}\n"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
