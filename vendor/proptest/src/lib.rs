//! Offline, API-compatible subset of
//! [`proptest`](https://crates.io/crates/proptest), vendored so the
//! workspace's property tests run without network access.
//!
//! What is kept: the [`Strategy`](strategy::Strategy) trait with
//! `prop_map`/`prop_flat_map`, [`Just`](strategy::Just), integer-range and
//! tuple strategies, [`collection::vec`], the
//! [`proptest!`](crate::proptest) macro (with `#![proptest_config(..)]`),
//! and `prop_assert!`/`prop_assert_eq!`.
//!
//! What is deliberately dropped: **shrinking** and persistence. A failing
//! case fails the test with its deterministic case index in the panic
//! message; re-running reproduces it exactly (case seeds are pure functions
//! of the case index), it just isn't minimised. That trades debugging
//! convenience for zero dependencies — acceptable for CI-style invariant
//! checking, which is how this workspace uses property tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating random values of an associated type.
    ///
    /// Upstream proptest separates strategies from value *trees* (for
    /// shrinking); without shrinking a strategy is just a seeded generator.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            let first = self.inner.generate(rng);
            (self.f)(first).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Builds a [`VecStrategy`]; mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The per-test configuration and RNG.

    use rand::SeedableRng;

    /// The RNG handed to strategies; deterministic per case index.
    pub type TestRng = rand::rngs::StdRng;

    /// Runner configuration. Only `cases` is honoured by this subset.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each property is checked with.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }

        /// The case count actually run: the `PROPTEST_CASES` environment
        /// variable overrides the configured value (mirroring upstream
        /// proptest), so CI can pin the property suite's runtime without
        /// touching test sources.
        pub fn effective_cases(&self) -> u32 {
            resolve_cases(std::env::var("PROPTEST_CASES").ok().as_deref(), self.cases)
        }
    }

    /// `PROPTEST_CASES` parsing with fallback (split out for testing —
    /// mutating the real environment races across test threads).
    pub(crate) fn resolve_cases(env: Option<&str>, fallback: u32) -> u32 {
        env.and_then(|v| v.trim().parse().ok()).unwrap_or(fallback)
    }

    /// Deterministic RNG for one case of one property.
    ///
    /// Domain-separated by property name so that properties sharing a case
    /// index still see unrelated streams.
    pub fn rng_for_case(property: &str, case: u32) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the name
        for b in property.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
    }
}

pub mod prelude {
    //! The common imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a property-test invariant (fails the current case on violation).
///
/// Without shrinking this is `assert!` plus the case context added by the
/// [`proptest!`] harness.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over `cases` generated inputs.
///
/// A failing case panics with its case index; case seeds depend only on
/// the property name and index, so failures replay deterministically.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = <$crate::test_runner::Config as Default>::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let cases = config.effective_cases();
            for case in 0..cases {
                let mut case_rng = $crate::test_runner::rng_for_case(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut case_rng);)+
                let run = move || $body;
                if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "proptest: property `{}` failed at case {case}/{cases} (deterministic; re-run reproduces it)",
                        stringify!($name),
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn proptest_cases_env_overrides_configured_count() {
        use crate::test_runner::{resolve_cases, Config};
        assert_eq!(resolve_cases(Some("16"), 48), 16);
        assert_eq!(resolve_cases(Some(" 200 "), 48), 200);
        assert_eq!(resolve_cases(Some("not a number"), 48), 48);
        assert_eq!(resolve_cases(None, 48), 48);
        // Without the env var set, effective == configured.
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(Config::with_cases(7).effective_cases(), 7);
        }
    }

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_runner::rng_for_case("bounds", 0);
        for _ in 0..200 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let (a, b) = ((0usize..5), (10i64..=12)).generate(&mut rng);
            assert!(a < 5);
            assert!((10..=12).contains(&b));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::test_runner::rng_for_case("vec", 1);
        for _ in 0..100 {
            let v = crate::collection::vec(0u8..10, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let strat =
            (1usize..5).prop_flat_map(|n| (Just(n), crate::collection::vec(0u32..10, n..n + 1)));
        let mut rng = crate::test_runner::rng_for_case("flat", 2);
        for _ in 0..50 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(x in 0u64..100, pair in (0u32..4, 5u32..9)) {
            prop_assert!(x < 100);
            let (a, b) = pair;
            prop_assert!(a < 4);
            prop_assert_eq!(b.clamp(5, 8), b);
            prop_assert_ne!(a, b);
        }
    }
}
